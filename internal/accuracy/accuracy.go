// Package accuracy measures per-sample response quality under KV cache
// compression by actually running the tiny transformer (internal/model)
// with each method's cache — nothing here is a synthetic accuracy curve.
//
// For every LongBench-like sample the evaluator runs an FP16 reference and a
// compressed run, then measures:
//
//   - retention: the fraction of the sample's critical token positions the
//     compressed cache still holds after prefill (eviction destroys these);
//   - fidelity: cosine similarity of the cached key vectors at retained
//     critical positions against the FP16 reference (quantisation and
//     upstream lossy attention degrade these);
//   - agreement: greedy-continuation token agreement with the reference;
//   - hidden similarity: cosine of the final prefill hidden states.
//
// Task scores combine these with task-structure-appropriate formulas (QA
// collapses when its needle is gone; summarisation degrades smoothly with
// coverage; code depends on the recent window that eviction policies keep),
// scaled so the FP16 baseline reproduces the paper's Table 7 baseline row.
// Algorithm 1 (negative-sample collection) is implemented verbatim.
package accuracy

import (
	"fmt"
	"math"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/quant"
	"rethinkkv/internal/sparse"
	"rethinkkv/internal/tensor"
	"rethinkkv/internal/textmetrics"
	"rethinkkv/internal/workload"
)

// Config controls the evaluator.
type Config struct {
	// ContSteps is the greedy continuation length compared between the
	// reference and compressed runs.
	ContSteps int
}

// DefaultConfig returns the standard evaluation setting.
func DefaultConfig() Config { return Config{ContSteps: 16} }

// Evaluator scores samples under compression methods.
type Evaluator struct {
	m   *model.Model
	cfg Config
}

// NewEvaluator builds an evaluator over the given tiny model.
func NewEvaluator(m *model.Model, cfg Config) *Evaluator {
	if cfg.ContSteps <= 0 {
		cfg.ContSteps = DefaultConfig().ContSteps
	}
	return &Evaluator{m: m, cfg: cfg}
}

// TinyCache maps a paper method name onto a cache configured for the tiny
// model's scale: budgets, residual windows and group sizes shrink by 4× so
// that the *fraction* of context compressed matches the full-scale setting
// on tiny prompts (DESIGN.md documents this scaling).
func TinyCache(methodName string, shape kvcache.Shape) (kvcache.Cache, error) {
	switch methodName {
	case "fp16":
		return kvcache.NewFull(shape), nil
	case "kivi-2", "kivi-4":
		bits := 4
		if methodName == "kivi-2" {
			bits = 2
		}
		return quant.NewKIVI(shape, quant.KIVIConfig{Bits: bits, GroupSize: 16, Residual: 32}), nil
	case "gear-2", "gear-4":
		bits := 4
		if methodName == "gear-2" {
			bits = 2
		}
		return quant.NewGEAR(shape, quant.GEARConfig{Bits: bits, GroupSize: 16, SparseFrac: 0.02, RankFrac: 0.05, PowerIters: 6}), nil
	case "h2o-256":
		return sparse.NewCache(shape, sparse.DefaultH2O(64)), nil
	case "h2o-512":
		return sparse.NewCache(shape, sparse.DefaultH2O(128)), nil
	case "stream-256":
		return sparse.NewCache(shape, sparse.DefaultStreaming(64)), nil
	case "stream-512":
		return sparse.NewCache(shape, sparse.DefaultStreaming(128)), nil
	case "snapkv-512":
		return sparse.NewCache(shape, sparse.DefaultSnapKV(128)), nil
	case "tova-512":
		return sparse.NewCache(shape, sparse.DefaultTOVA(128)), nil
	case "scissorhands-512":
		return sparse.NewCache(shape, sparse.DefaultScissorhands(128)), nil
	case "keyformer-512":
		return sparse.NewCache(shape, sparse.DefaultKeyformer(128)), nil
	case "pyramidkv-512":
		return sparse.NewCache(shape, sparse.DefaultPyramidKV(128)), nil
	case "adakv-512":
		return sparse.NewCache(shape, sparse.DefaultAdaKV(128)), nil
	case "qjl":
		return quant.NewQJL(shape, quant.DefaultQJL(shape.HeadDim)), nil
	case "intactkv-4":
		return quant.NewIntact(shape, quant.DefaultIntact(4)), nil
	case "mikv":
		return quant.NewMiKV(shape, quant.DefaultMiKV()), nil
	case "int8", "int4":
		// The live serving plane's quantized KV pages (WithKVQuant), not an
		// offline compression method: per-token uniform codes the decode
		// kernels dequantize on stream. Evaluating them here is what turns
		// the serving plane's capacity win into a measured accuracy cost.
		bits := 8
		if methodName == "int4" {
			bits = 4
		}
		return kvcache.NewPagedKVQuant(shape, 16, 0, bits), nil
	}
	return nil, fmt.Errorf("accuracy: no tiny-scale mapping for method %q", methodName)
}

// Reference is the FP16 run of one sample, reused across methods.
type Reference struct {
	Sample workload.Sample
	// Continuation is the greedy reference continuation.
	Continuation []int
	// Hidden is the final prefill hidden state.
	Hidden []float32
	// criticalK[pos][layer][head] is the cached key vector at a critical
	// position.
	criticalK map[int][][][]float32
}

// RunBaseline executes the FP16 reference for a sample.
func (e *Evaluator) RunBaseline(s workload.Sample) *Reference {
	shape := e.m.CacheShape()
	cache := kvcache.NewFull(shape)
	res := e.m.Prefill(s.Prompt, cache)
	ref := &Reference{Sample: s, Hidden: res.Hidden, criticalK: map[int][][][]float32{}}
	ref.Continuation = e.continueGreedy(cache, res.Logits, len(s.Prompt))
	// Harvest reference keys at critical positions. Full cache positions
	// are the identity, so index == position.
	for _, sp := range s.Critical {
		for pos := sp.Start; pos < sp.End; pos++ {
			if _, dup := ref.criticalK[pos]; dup {
				continue
			}
			ref.criticalK[pos] = make([][][]float32, shape.Layers)
		}
	}
	for l := 0; l < shape.Layers; l++ {
		for h := 0; h < shape.KVHeads; h++ {
			keys, _ := cache.Seq(l, h)
			for pos := range ref.criticalK {
				if ref.criticalK[pos][l] == nil {
					ref.criticalK[pos][l] = make([][]float32, shape.KVHeads)
				}
				ref.criticalK[pos][l][h] = keys[pos]
			}
		}
	}
	return ref
}

// continueGreedy decodes ContSteps tokens greedily from the given state.
func (e *Evaluator) continueGreedy(cache kvcache.Cache, logits []float32, startPos int) []int {
	out := make([]int, 0, e.cfg.ContSteps)
	pos := startPos
	for i := 0; i < e.cfg.ContSteps; i++ {
		next := tensor.Argmax(logits)
		out = append(out, next)
		sr := e.m.Forward(next, pos, cache)
		logits = sr.Logits
		pos++
	}
	return out
}

// Result is the per-sample, per-method evaluation outcome.
type Result struct {
	Sample    workload.Sample
	Method    string
	Retention float64 // critical positions retained, in [0,1]
	Fidelity  float64 // key fidelity at retained critical positions, in [0,1]
	Agreement float64 // positional continuation token agreement, in [0,1]
	F1        float64 // unigram F1 of the continuation vs reference
	EditSim   float64 // normalised edit similarity of the continuation
	HiddenSim float64 // final hidden state cosine, in [-1,1]
	Score     float64 // task score (paper's Table 7 scale)
}

// Evaluate runs a method on the reference's sample and scores it.
func (e *Evaluator) Evaluate(ref *Reference, methodName string) Result {
	s := ref.Sample
	shape := e.m.CacheShape()
	cache, err := TinyCache(methodName, shape)
	if err != nil {
		panic(err)
	}
	res := e.m.Prefill(s.Prompt, cache)
	if p, ok := cache.(compress.Prefiller); ok {
		p.FinishPrefill()
	}
	retention, fidelity := e.measureCritical(ref, cache)
	cont := e.continueGreedy(cache, res.Logits, len(s.Prompt))

	agree := tokenAgreement(ref.Continuation, cont)
	hSim := tensor.CosineSim(ref.Hidden, res.Hidden)
	if hSim < 0 {
		hSim = 0
	}

	r := Result{
		Sample: s, Method: methodName,
		Retention: retention, Fidelity: fidelity,
		Agreement: agree, HiddenSim: hSim,
		F1:      textmetrics.TokenF1(cont, ref.Continuation),
		EditSim: textmetrics.EditSimilarity(cont, ref.Continuation),
	}
	// Continuation quality blends positional agreement with unigram F1:
	// greedy trajectories on the tiny random-weight model diverge far more
	// chaotically than a trained LLM's, and F1 restores partial credit.
	quality := 0.5*agree + 0.5*r.F1
	r.Score = taskScore(s, spanCoverages(e, ref, cache), quality, hSim)
	return r
}

// SparseResult is Result plus the sparse decode plane's own diagnostics:
// the attention-mass recall of the selected pages and the page-selection
// tallies accumulated over the continuation.
type SparseResult struct {
	Result
	// Recall is the mean share of true (dense) attention mass the selected
	// pages carried, in (0, 1]; 1 when sparsity never dropped a page.
	Recall float64
	// PagesSelected / PagesTotal are the continuation's page-selection
	// tallies across every (layer, head) sparse attention.
	PagesSelected int64
	PagesTotal    int64
}

// EvaluateSparse scores the live sparse decode plane (WithSparseAttention)
// at the given page budget: dense prefill into a summaries-enabled paged
// cache — exactly what the serving engines do — then a greedy continuation
// under topK page selection with the attention-mass recall probe on. The
// cache itself is lossless (full-precision pages, nothing evicted), so
// retention and fidelity stay 1 and the whole accuracy cost shows up in
// continuation agreement: sparsity degrades what decode *reads*, not what
// the cache *holds*. pageTokens <= 0 defaults to 16, matching the serving
// default.
func (e *Evaluator) EvaluateSparse(ref *Reference, topK, pageTokens int) SparseResult {
	if topK <= 0 {
		panic(fmt.Sprintf("accuracy: sparse evaluation needs positive topK, got %d", topK))
	}
	if pageTokens <= 0 {
		pageTokens = 16
	}
	s := ref.Sample
	shape := e.m.CacheShape()
	cache := kvcache.NewPagedKVQuant(shape, pageTokens, 0, 0)
	cache.EnableKeySummaries()
	ws := e.m.NewWorkspace()
	// Prefill stays dense (the model's sparse branch only engages on the
	// decode path, but the model-level prefill loop *is* decode steps —
	// keep topK off until the continuation).
	res := e.m.PrefillInto(ws, s.Prompt, cache)
	retention, fidelity := e.measureCritical(ref, cache)

	prev := e.m.SparseTopK()
	e.m.SetSparseTopK(topK)
	ws.SetRecallProbe(true)
	cont := make([]int, 0, e.cfg.ContSteps)
	logits, pos := res.Logits, len(s.Prompt)
	for i := 0; i < e.cfg.ContSteps; i++ {
		next := tensor.Argmax(logits)
		cont = append(cont, next)
		sr := e.m.ForwardInto(ws, next, pos, cache)
		logits = sr.Logits
		pos++
	}
	ws.SetRecallProbe(false)
	e.m.SetSparseTopK(prev)
	mass, cnt := ws.TakeRecall()
	sel, tot := ws.TakeSparseStats()

	agree := tokenAgreement(ref.Continuation, cont)
	hSim := tensor.CosineSim(ref.Hidden, res.Hidden)
	if hSim < 0 {
		hSim = 0
	}
	r := Result{
		Sample: s, Method: fmt.Sprintf("sparse-k%d", topK),
		Retention: retention, Fidelity: fidelity,
		Agreement: agree, HiddenSim: hSim,
		F1:      textmetrics.TokenF1(cont, ref.Continuation),
		EditSim: textmetrics.EditSimilarity(cont, ref.Continuation),
	}
	quality := 0.5*agree + 0.5*r.F1
	r.Score = taskScore(s, spanCoverages(e, ref, cache), quality, hSim)
	recall := 1.0
	if cnt > 0 {
		recall = mass / float64(cnt)
	}
	return SparseResult{Result: r, Recall: recall, PagesSelected: sel, PagesTotal: tot}
}

// measureCritical computes retention and fidelity over all critical
// positions, averaged across layers and heads.
func (e *Evaluator) measureCritical(ref *Reference, cache kvcache.Cache) (retention, fidelity float64) {
	shape := e.m.CacheShape()
	var retained, total int
	var fidSum float64
	var fidN int
	for l := 0; l < shape.Layers; l++ {
		for h := 0; h < shape.KVHeads; h++ {
			pos := cache.Positions(l, h)
			index := make(map[int]int, len(pos))
			for i, p := range pos {
				index[p] = i
			}
			keys, _ := cache.Seq(l, h)
			for p, perLayer := range ref.criticalK {
				total++
				i, ok := index[p]
				if !ok {
					continue
				}
				retained++
				sim := tensor.CosineSim(keys[i], perLayer[l][h])
				if sim < 0 {
					sim = 0
				}
				fidSum += sim
				fidN++
			}
		}
	}
	if total == 0 {
		return 1, 1
	}
	retention = float64(retained) / float64(total)
	if fidN == 0 {
		return retention, 0
	}
	return retention, fidSum / float64(fidN)
}

// spanCoverages returns per-span coverage = retention × fidelity measured
// on that span alone.
func spanCoverages(e *Evaluator, ref *Reference, cache kvcache.Cache) []float64 {
	shape := e.m.CacheShape()
	out := make([]float64, len(ref.Sample.Critical))
	for si, sp := range ref.Sample.Critical {
		var retained, total int
		var fidSum float64
		for l := 0; l < shape.Layers; l++ {
			for h := 0; h < shape.KVHeads; h++ {
				pos := cache.Positions(l, h)
				index := make(map[int]int, len(pos))
				for i, p := range pos {
					index[p] = i
				}
				keys, _ := cache.Seq(l, h)
				for p := sp.Start; p < sp.End; p++ {
					total++
					if i, ok := index[p]; ok {
						retained++
						sim := tensor.CosineSim(keys[i], ref.criticalK[p][l][h])
						if sim < 0 {
							sim = 0
						}
						fidSum += sim
					}
				}
			}
		}
		if total > 0 {
			out[si] = fidSum / float64(total) // = retention × mean fidelity
		}
	}
	return out
}

// BaseScore is the FP16 model's raw capability per task group, matching the
// scale of the paper's Table 7 baseline row (LongBench task metrics).
func BaseScore(task workload.TaskType) float64 {
	switch task {
	case workload.Summarization:
		return 32
	case workload.SingleDocQA, workload.MultiDocQA:
		return 52
	case workload.Code:
		return 97
	case workload.FewShot:
		return 60
	default: // Synthetic
		return 70
	}
}

// taskScore maps measured coverage/agreement/similarity onto a task score.
// Formulas reflect each task's dependence structure (package comment).
//
// Two moderating terms keep the mapping faithful to how LongBench behaves
// at full scale. First, many samples are *partially* answerable without
// their critical context (a summary can cover what survived; a QA answer
// can be guessed from topic), so the coverage term is mixed toward 1 with
// weight growing in sample difficulty: easy samples degrade gently, hard
// samples collapse. Second, greedy-continuation divergence on the tiny
// random-weight model is far more chaotic than on a trained LLM, so the
// agreement factor is floored — it modulates rather than dominates.
func taskScore(s workload.Sample, cov []float64, agree, hSim float64) float64 {
	base := BaseScore(s.Task)
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 1
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	d := s.Difficulty
	// depend mixes a coverage term toward 1 by the sample's
	// context-independence: easy samples (low d) are largely answerable
	// without their critical context.
	depend := func(covTerm float64) float64 {
		w := 0.75 * d
		return (1 - w) + w*covTerm
	}
	quality := func(q float64) float64 { return 0.6 + 0.4*q }
	switch s.Task {
	case workload.SingleDocQA, workload.MultiDocQA:
		// QA collapses when the needle is gone (for hard samples).
		c := depend(pow(mean(cov), 1+2*d))
		return base * c * quality(agree)
	case workload.Summarization:
		// Smooth degradation with coverage of the salient set; the
		// summary itself is a long generation, so continuation quality
		// matters as much as representation drift — this is why
		// quantisation's negatives concentrate in summarization (Fig 7).
		c := depend(pow(mean(cov), 0.5+d))
		return base * c * quality(0.5*agree+0.5*hSim)
	case workload.Code:
		// Definitions matter some; the completion context (last span)
		// matters most — and recency-keeping policies preserve it.
		defC, tailC := 1.0, 1.0
		if len(cov) >= 2 {
			defC = mean(cov[:len(cov)-1])
			tailC = cov[len(cov)-1]
		} else if len(cov) == 1 {
			tailC = cov[0]
		}
		c := depend(0.3*defC + 0.7*tailC)
		return base * c * quality(agree)
	case workload.FewShot:
		return base * depend(pow(mean(cov), d)) * quality(agree)
	default: // Synthetic: strict retrieval.
		c := mean(cov)
		return base * depend(c*c*c) * quality(agree)
	}
}

// pow is math.Pow clamped to coverage semantics: inputs outside (0,1) pin
// to the boundary so scores never exceed the base.
func pow(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return math.Pow(x, p)
}

func tokenAgreement(a, b []int) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	match := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// SemanticScore returns 100 × cosine similarity between the bag-of-token
// representations of two sequences — the semantic-quality proxy used for
// Table 4 (the paper uses ChatGPT-reference similarity; see DESIGN.md).
func SemanticScore(a, b []int, vocab int) float64 {
	if vocab <= 0 {
		panic("accuracy: non-positive vocab")
	}
	va := make([]float32, vocab)
	vb := make([]float32, vocab)
	for _, t := range a {
		if t >= 0 && t < vocab {
			va[t]++
		}
	}
	for _, t := range b {
		if t >= 0 && t < vocab {
			vb[t]++
		}
	}
	return 100 * tensor.CosineSim(va, vb)
}
