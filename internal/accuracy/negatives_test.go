package accuracy

import (
	"testing"

	"rethinkkv/internal/workload"
)

// mkResult builds a synthetic Result for Algorithm-1 unit tests.
func mkResult(id int, task workload.TaskType, score float64) Result {
	return Result{Sample: workload.Sample{ID: id, Task: task}, Score: score}
}

func TestCollectNegativesAlgorithm1(t *testing.T) {
	baseline := []Result{
		mkResult(0, workload.SingleDocQA, 100), // benign
		mkResult(1, workload.SingleDocQA, 100), // benign
		mkResult(2, workload.SingleDocQA, 10),  // below average: not benign
	}
	byMethod := map[string][]Result{
		"a": {mkResult(0, workload.SingleDocQA, 50), mkResult(1, workload.SingleDocQA, 95), mkResult(2, workload.SingleDocQA, 0)},
		"b": {mkResult(0, workload.SingleDocQA, 40), mkResult(1, workload.SingleDocQA, 40), mkResult(2, workload.SingleDocQA, 0)},
	}
	// θ=10%: sample 0 fails under both (50 and 40 < 90) → negative for the
	// combined set. Sample 1 passes under a (95 >= 90) → not negative.
	// Sample 2 is not benign regardless.
	set := CollectNegatives(baseline, byMethod, []string{"a", "b"}, 0.10)
	if len(set.IDs) != 1 || set.IDs[0] != 0 {
		t.Fatalf("combined negatives = %v", set.IDs)
	}
	// Single-method set b: samples 0 and 1 both fail.
	setB := CollectNegatives(baseline, byMethod, []string{"b"}, 0.10)
	if len(setB.IDs) != 2 {
		t.Fatalf("b negatives = %v", setB.IDs)
	}
	// Combined set must never exceed any single set (Observation 5).
	if len(set.IDs) > len(setB.IDs) {
		t.Fatal("ensemble should reduce negatives")
	}
}

func TestCollectNegativesEdgeCases(t *testing.T) {
	if s := CollectNegatives(nil, nil, []string{"a"}, 0.1); len(s.IDs) != 0 {
		t.Fatal("empty baseline should yield none")
	}
	base := []Result{mkResult(0, workload.Code, 50)}
	if s := CollectNegatives(base, map[string][]Result{}, []string{"missing"}, 0.1); len(s.IDs) != 0 {
		t.Fatal("missing method results should not mark negatives")
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	// Figure 6: raising the threshold can only shrink the negative count.
	baseline := make([]Result, 50)
	method := make([]Result, 50)
	for i := range baseline {
		baseline[i] = mkResult(i, workload.Summarization, 100)
		method[i] = mkResult(i, workload.Summarization, float64(2*i)) // 0..98
	}
	counts := ThresholdSweep(baseline, map[string][]Result{"m": method}, []string{"m"},
		[]float64{0.02, 0.04, 0.08, 0.16, 0.32})
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("sweep not monotone: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("low threshold should catch many negatives")
	}
}

func TestTaskBreakdownAndGroupScores(t *testing.T) {
	samples := []workload.Sample{
		{ID: 0, Task: workload.Summarization},
		{ID: 1, Task: workload.SingleDocQA},
		{ID: 2, Task: workload.MultiDocQA},
		{ID: 3, Task: workload.Code},
	}
	set := NegativeSet{IDs: []int{0, 1, 2}}
	bd := TaskBreakdown(set, samples)
	if bd["Summarization"] != 1.0/3 || bd["QA"] != 2.0/3 {
		t.Fatalf("breakdown = %v", bd)
	}
	results := []Result{
		mkResult(0, workload.Summarization, 30),
		mkResult(1, workload.SingleDocQA, 50),
		mkResult(2, workload.MultiDocQA, 40),
	}
	gs := GroupScores(results)
	if gs["Summarization"] != 30 || gs["QA"] != 45 {
		t.Fatalf("group scores = %v", gs)
	}
	groups := SortedGroups(gs)
	if len(groups) != 2 || groups[0] != "QA" {
		t.Fatalf("sorted groups = %v", groups)
	}
}

func TestFilterByIDs(t *testing.T) {
	rs := []Result{mkResult(0, workload.Code, 1), mkResult(1, workload.Code, 2), mkResult(2, workload.Code, 3)}
	got := FilterByIDs(rs, []int{2, 0})
	if len(got) != 2 || got[0].Sample.ID != 0 || got[1].Sample.ID != 2 {
		t.Fatalf("filtered = %v", got)
	}
}

func TestEndToEndNegativePipeline(t *testing.T) {
	// Integration: real tiny-model evaluation produces negatives whose
	// task mix is dominated by context-hungry tasks (Figure 7's shape).
	if testing.Short() {
		t.Skip("tiny-model sweep skipped in -short")
	}
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 6})
	samples := suite(40)
	var baseline []Result
	byMethod := map[string][]Result{}
	methods := []string{"stream-256", "h2o-256"}
	for _, s := range samples {
		ref := e.RunBaseline(s)
		baseline = append(baseline, e.Evaluate(ref, "fp16"))
		for _, mm := range methods {
			byMethod[mm] = append(byMethod[mm], e.Evaluate(ref, mm))
		}
	}
	single := CollectNegatives(baseline, byMethod, methods[:1], 0.10)
	combined := CollectNegatives(baseline, byMethod, methods, 0.10)
	if len(single.IDs) == 0 {
		t.Fatal("eviction at budget 64 on 256-token prompts must produce negatives")
	}
	if len(combined.IDs) > len(single.IDs) {
		t.Fatal("combined set should not exceed single set")
	}
}
