package accuracy

import (
	"sort"

	"rethinkkv/internal/workload"
)

// NegativeSet is the output of Algorithm 1: the sample IDs that are benign
// under the baseline but degrade beyond the threshold under *every* method
// in the algorithm set.
type NegativeSet struct {
	Threshold float64
	Methods   []string
	IDs       []int
}

// CollectNegatives implements the paper's Algorithm 1 exactly:
//
//	for each benign sample d (baseline accuracy >= the baseline average):
//	    negative := true
//	    for each algorithm A in the set:
//	        if acc(A, d) >= (1-θ) × acc(baseline, d): negative = false
//	    if negative: add d
//
// baseline[i] and byMethod[m][i] must describe the same sample order.
func CollectNegatives(baseline []Result, byMethod map[string][]Result, methods []string, theta float64) NegativeSet {
	out := NegativeSet{Threshold: theta, Methods: append([]string(nil), methods...)}
	if len(baseline) == 0 || len(methods) == 0 {
		return out
	}
	// Benign criterion (footnote 2): accuracy at or above the average.
	// LongBench metrics are not comparable across task types (code scores
	// ~97, summarization ~32), so the average is per task group — a
	// global mean would disqualify every sample of low-scale tasks.
	groupSum := map[string]float64{}
	groupN := map[string]int{}
	for _, r := range baseline {
		g := r.Sample.Task.Group()
		groupSum[g] += r.Score
		groupN[g]++
	}
	for i, b := range baseline {
		g := b.Sample.Task.Group()
		if b.Score < groupSum[g]/float64(groupN[g]) {
			continue // not benign
		}
		negative := true
		for _, m := range methods {
			rs, ok := byMethod[m]
			if !ok || i >= len(rs) {
				negative = false
				break
			}
			if rs[i].Score >= (1-theta)*b.Score {
				negative = false
				break
			}
		}
		if negative {
			out.IDs = append(out.IDs, b.Sample.ID)
		}
	}
	return out
}

// ThresholdSweep runs Algorithm 1 across thresholds (fractions, e.g. 0.02,
// 0.08, 0.32 for the paper's 2^1..2^5 percent axis) and returns the
// negative-sample count per threshold — Figure 6's curve.
func ThresholdSweep(baseline []Result, byMethod map[string][]Result, methods []string, thetas []float64) []int {
	out := make([]int, len(thetas))
	for i, th := range thetas {
		out[i] = len(CollectNegatives(baseline, byMethod, methods, th).IDs)
	}
	return out
}

// TaskBreakdown returns, for a negative set, the proportion of negatives in
// each Figure-7 task group, keyed by group name.
func TaskBreakdown(set NegativeSet, samples []workload.Sample) map[string]float64 {
	byID := make(map[int]workload.Sample, len(samples))
	for _, s := range samples {
		byID[s.ID] = s
	}
	counts := map[string]int{}
	total := 0
	for _, id := range set.IDs {
		s, ok := byID[id]
		if !ok {
			continue
		}
		counts[s.Task.Group()]++
		total++
	}
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for g, c := range counts {
		out[g] = float64(c) / float64(total)
	}
	return out
}

// GroupScores averages scores per Figure-7 task group for a result slice —
// Table 7's rows.
func GroupScores(results []Result) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range results {
		g := r.Sample.Task.Group()
		sums[g] += r.Score
		counts[g]++
	}
	out := map[string]float64{}
	for g, s := range sums {
		out[g] = s / float64(counts[g])
	}
	return out
}

// FilterByIDs returns the results whose sample IDs are in the given set,
// preserving order — used to score methods on the negative benchmark.
func FilterByIDs(results []Result, ids []int) []Result {
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []Result
	for _, r := range results {
		if want[r.Sample.ID] {
			out = append(out, r)
		}
	}
	return out
}

// SortedGroups returns group names in a stable presentation order.
func SortedGroups(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
