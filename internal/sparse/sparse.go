// Package sparse implements sparsity-based KV cache compression: eviction
// policies that drop the KV pairs of less-important tokens under a fixed
// per-head budget. The policies the paper evaluates are implemented in full:
//
//   - StreamingLLM (Xiao et al., 2023): retain the first Sinks tokens
//     ("attention sinks") and the most recent Recent tokens; evict
//     everything in between. Purely positional — no score computation.
//   - H2O (Zhang et al., 2024): accumulate attention scores per token
//     ("heavy hitter oracle"); retain the Recent window plus the
//     highest-accumulated-score tokens, evicting the lowest-scored
//     non-recent entry when over budget.
//   - TOVA (Oren et al., 2024): evict the token with the lowest attention
//     score from the most recent step; the recent window is NOT protected.
//   - SnapKV (Li et al., 2024): at the end of prefill, select the tokens
//     whose pooled attention from an observation window (the last ObsWindow
//     prompt positions) is highest; decode-time tokens are always retained.
//
// Eviction caches implement kvcache.Cache and kvcache.AttentionObserver, so
// the model's real attention weights drive eviction decisions, and evicted
// information is genuinely unavailable to later steps.
package sparse

import (
	"fmt"
	"math"

	"rethinkkv/internal/kvcache"
)

// PolicyKind selects the eviction policy.
type PolicyKind int

const (
	// StreamingLLM keeps attention sinks plus a recent window.
	StreamingLLM PolicyKind = iota
	// H2O keeps heavy hitters (by accumulated attention) plus a recent window.
	H2O
	// TOVA evicts the lowest last-step attention score.
	TOVA
	// SnapKV compresses the prompt once at prefill end via observation-window pooling.
	SnapKV
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	if name, ok := policyName(p); ok {
		return name
	}
	switch p {
	case StreamingLLM:
		return "streaming-llm"
	case H2O:
		return "h2o"
	case TOVA:
		return "tova"
	case SnapKV:
		return "snapkv"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterises an eviction cache.
type Config struct {
	Kind PolicyKind
	// Budget is the maximum retained entries per head (total cache size).
	Budget int
	// Sinks is the count of initial tokens that are never evicted
	// (StreamingLLM).
	Sinks int
	// Recent is the protected recent-token window (StreamingLLM, H2O).
	Recent int
	// ObsWindow is SnapKV's observation window (last prompt positions whose
	// attention votes select retained tokens).
	ObsWindow int
	// PoolSize is SnapKV's 1-D pooling width for clustering votes.
	PoolSize int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Budget <= 0 {
		return fmt.Errorf("sparse: non-positive budget %d", c.Budget)
	}
	if handled, err := c.validateExtended(); handled {
		return err
	}
	switch c.Kind {
	case StreamingLLM:
		if c.Sinks+c.Recent != c.Budget {
			return fmt.Errorf("sparse: streaming-llm requires sinks+recent == budget, got %d+%d != %d", c.Sinks, c.Recent, c.Budget)
		}
	case H2O:
		if c.Recent >= c.Budget {
			return fmt.Errorf("sparse: h2o recent %d must leave room for heavy hitters in budget %d", c.Recent, c.Budget)
		}
	case TOVA:
		// No extra constraints.
	case SnapKV:
		if c.ObsWindow <= 0 || c.ObsWindow > c.Budget {
			return fmt.Errorf("sparse: snapkv obs window %d invalid for budget %d", c.ObsWindow, c.Budget)
		}
		if c.PoolSize <= 0 {
			return fmt.Errorf("sparse: snapkv pool size %d invalid", c.PoolSize)
		}
	default:
		return fmt.Errorf("sparse: unknown policy %v", c.Kind)
	}
	return nil
}

// DefaultStreaming returns the paper's StreamingLLM setting: 64 sink tokens
// plus a 448-token recent window when budget is 512 (Appendix A.3), scaled
// proportionally for other budgets.
func DefaultStreaming(budget int) Config {
	sinks := budget / 8
	return Config{Kind: StreamingLLM, Budget: budget, Sinks: sinks, Recent: budget - sinks}
}

// DefaultH2O returns the paper's H2O setting: 64 heavy-hitter slots and a
// 448-token recent window at budget 512, scaled proportionally.
func DefaultH2O(budget int) Config {
	return Config{Kind: H2O, Budget: budget, Recent: budget - budget/8}
}

// DefaultTOVA returns a TOVA configuration with the given budget.
func DefaultTOVA(budget int) Config {
	return Config{Kind: TOVA, Budget: budget}
}

// DefaultSnapKV returns SnapKV with a 32-token observation window and
// pool size 7, per the SnapKV paper's defaults.
func DefaultSnapKV(budget int) Config {
	obs := 32
	if obs > budget/2 {
		obs = budget / 2
	}
	if obs < 1 {
		obs = 1
	}
	return Config{Kind: SnapKV, Budget: budget, ObsWindow: obs, PoolSize: 7}
}

// entry is one retained token for one head.
type entry struct {
	pos       int
	k, v      []float32
	accScore  float64 // H2O: accumulated attention
	lastScore float64 // TOVA: most recent step's attention
}

// headState holds one head's retained entries and score history.
type headState struct {
	entries []entry
	// obsScores is SnapKV's ring of the last ObsWindow attention vectors
	// observed during prefill (each aligned with entries at observe time;
	// valid because SnapKV performs no evictions before FinishPrefill).
	obsScores [][]float64
}

// Cache is an eviction-based KV cache.
type Cache struct {
	cfg       Config
	shape     kvcache.Shape
	heads     [][]*headState
	appended  int
	evictions int64
	// scorePasses counts attention-score observations consumed; under a
	// FlashAttention engine each costs extra kernel passes (see
	// internal/attention.FlashScores), which the cost model charges.
	scorePasses int64
	prefillDone bool
	// gumbelStream is Keyformer's deterministic noise state.
	gumbelStream uint64
}

// NewCache builds an eviction cache. It panics on invalid configuration.
func NewCache(shape kvcache.Shape, cfg Config) *Cache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, shape: shape, gumbelStream: gumbelRNGSeed(shape)}
	c.heads = make([][]*headState, shape.Layers)
	for l := range c.heads {
		c.heads[l] = make([]*headState, shape.KVHeads)
		for h := range c.heads[l] {
			c.heads[l][h] = &headState{}
		}
	}
	return c
}

// Shape returns the cache dimensions.
func (c *Cache) Shape() kvcache.Shape { return c.shape }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Append stores one token for every head of a layer and applies the
// eviction policy if the head exceeds budget.
func (c *Cache) Append(layer int, k, v [][]float32) {
	pos := c.appended
	for h := 0; h < c.shape.KVHeads; h++ {
		hs := c.heads[layer][h]
		hs.entries = append(hs.entries, entry{
			pos: pos,
			k:   append([]float32(nil), k[h]...),
			v:   append([]float32(nil), v[h]...),
		})
		if c.cfg.Kind != AdaKV {
			c.evictIfNeeded(hs, layer)
		}
	}
	if c.cfg.Kind == AdaKV {
		c.rebalanceAdaKV(layer)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// evictIfNeeded enforces the (possibly layer-dependent) budget for one head.
func (c *Cache) evictIfNeeded(hs *headState, layer int) {
	if c.cfg.Kind == SnapKV && !c.prefillDone {
		return // SnapKV defers all eviction to FinishPrefill.
	}
	budget := c.layerBudget(layer)
	for len(hs.entries) > budget {
		victim := c.selectVictim(hs)
		if victim < 0 {
			return
		}
		hs.entries = append(hs.entries[:victim], hs.entries[victim+1:]...)
		c.evictions++
	}
}

// selectVictim returns the index to evict, or -1 when nothing is evictable.
func (c *Cache) selectVictim(hs *headState) int {
	if idx, handled := c.selectVictimExtended(hs); handled {
		return idx
	}
	n := len(hs.entries)
	switch c.cfg.Kind {
	case StreamingLLM:
		// Oldest entry that is not a sink. Entries are position-ordered.
		for i := 0; i < n; i++ {
			if hs.entries[i].pos >= c.cfg.Sinks {
				return i
			}
		}
		return -1
	case H2O:
		// Lowest accumulated score outside the recent window.
		limit := n - c.cfg.Recent
		if limit <= 0 {
			limit = 1
		}
		best, bestScore := -1, math.Inf(1)
		for i := 0; i < limit; i++ {
			if hs.entries[i].accScore < bestScore {
				best, bestScore = i, hs.entries[i].accScore
			}
		}
		return best
	case TOVA:
		// Lowest last-step score, excluding the just-appended token.
		best, bestScore := -1, math.Inf(1)
		for i := 0; i < n-1; i++ {
			if hs.entries[i].lastScore < bestScore {
				best, bestScore = i, hs.entries[i].lastScore
			}
		}
		return best
	case SnapKV:
		// Post-prefill decode tokens are always retained; if budget is
		// exceeded during decode, fall back to evicting the oldest
		// non-selected... by construction FinishPrefill leaves headroom, so
		// evict the oldest entry.
		return 0
	}
	return -1
}

// ObserveAttention implements kvcache.AttentionObserver: weights align with
// the entries returned by the most recent Seq call for this head.
func (c *Cache) ObserveAttention(layer, head int, weights []float32) {
	hs := c.heads[layer][head]
	n := len(hs.entries)
	if len(weights) != n {
		// The observer contract is best-effort: a mismatch means the
		// caller computed attention over a different snapshot; ignore.
		return
	}
	c.scorePasses++
	if c.observeExtended(hs, weights) {
		return
	}
	switch c.cfg.Kind {
	case H2O:
		for i := range weights {
			hs.entries[i].accScore += float64(weights[i])
		}
	case TOVA:
		for i := range weights {
			hs.entries[i].lastScore = float64(weights[i])
		}
	case SnapKV:
		if c.prefillDone {
			return
		}
		vec := make([]float64, n)
		for i, w := range weights {
			vec[i] = float64(w)
		}
		hs.obsScores = append(hs.obsScores, vec)
		if len(hs.obsScores) > c.cfg.ObsWindow {
			hs.obsScores = hs.obsScores[1:]
		}
	}
}

// FinishPrefill signals the end of the prompt. For SnapKV this triggers the
// one-shot prompt compression; other policies ignore it.
func (c *Cache) FinishPrefill() {
	if c.prefillDone {
		return
	}
	c.prefillDone = true
	if c.cfg.Kind != SnapKV {
		return
	}
	for l := range c.heads {
		for h := range c.heads[l] {
			c.snapCompress(c.heads[l][h])
		}
	}
}

// snapCompress implements SnapKV's selection: pooled observation-window
// votes pick the retained prompt tokens; the observation window itself is
// always kept.
func (c *Cache) snapCompress(hs *headState) {
	n := len(hs.entries)
	if n <= c.cfg.Budget {
		return
	}
	keepBudget := c.cfg.Budget - c.cfg.ObsWindow
	if keepBudget < 0 {
		keepBudget = 0
	}
	obsStart := n - c.cfg.ObsWindow
	// Vote: sum of observation-window attention onto each pre-window token.
	votes := make([]float64, obsStart)
	for _, vec := range hs.obsScores {
		for i := 0; i < obsStart && i < len(vec); i++ {
			votes[i] += vec[i]
		}
	}
	// 1-D max pooling clusters votes so retained tokens keep local context.
	pooled := make([]float64, obsStart)
	half := c.cfg.PoolSize / 2
	for i := range pooled {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= obsStart {
			hi = obsStart - 1
		}
		m := votes[lo]
		for j := lo + 1; j <= hi; j++ {
			if votes[j] > m {
				m = votes[j]
			}
		}
		pooled[i] = m
	}
	// Select top keepBudget pre-window tokens by pooled votes.
	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, obsStart)
	for i := range cands {
		cands[i] = cand{i, pooled[i]}
	}
	// Partial selection of the top keepBudget.
	for i := 0; i < keepBudget && i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].score > cands[best].score {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	keep := make(map[int]bool, c.cfg.Budget)
	for i := 0; i < keepBudget && i < len(cands); i++ {
		keep[cands[i].idx] = true
	}
	for i := obsStart; i < n; i++ {
		keep[i] = true
	}
	kept := hs.entries[:0]
	for i, e := range hs.entries {
		if keep[i] {
			kept = append(kept, e)
		} else {
			c.evictions++
		}
	}
	hs.entries = kept
	hs.obsScores = nil
}

// Seq returns the retained keys and values in position order.
func (c *Cache) Seq(layer, head int) (keys, values [][]float32) {
	hs := c.heads[layer][head]
	keys = make([][]float32, len(hs.entries))
	values = make([][]float32, len(hs.entries))
	for i := range hs.entries {
		keys[i] = hs.entries[i].k
		values[i] = hs.entries[i].v
	}
	return keys, values
}

// Positions returns the absolute positions of retained entries.
func (c *Cache) Positions(layer, head int) []int {
	hs := c.heads[layer][head]
	ps := make([]int, len(hs.entries))
	for i := range hs.entries {
		ps[i] = hs.entries[i].pos
	}
	return ps
}

// Len reports the retained entry count for one head.
func (c *Cache) Len(layer, head int) int { return len(c.heads[layer][head].entries) }

// TotalAppended reports how many tokens have been appended.
func (c *Cache) TotalAppended() int { return c.appended }

// MemoryBytes reports resident size: retained entries at FP16, plus score
// metadata for score-based policies (one FP16 per retained entry).
func (c *Cache) MemoryBytes() int64 {
	var elems, meta int64
	for l := range c.heads {
		for h := range c.heads[l] {
			n := int64(len(c.heads[l][h].entries))
			elems += n * int64(c.shape.HeadDim) * 2 // K and V
			if c.cfg.Kind == H2O || c.cfg.Kind == TOVA {
				meta += n
			}
		}
	}
	return elems*kvcache.BytesPerElemFP16 + meta*2
}

// Evictions returns the cumulative evicted-entry count.
func (c *Cache) Evictions() int64 { return c.evictions }

// ScorePasses returns the number of attention-score observations consumed;
// nonzero values mean a FlashAttention engine had to re-materialise scores.
func (c *Cache) ScorePasses() int64 { return c.scorePasses }

// CompressionRatio returns FP16 bytes of the full history over actual bytes.
func (c *Cache) CompressionRatio() float64 {
	actual := c.MemoryBytes()
	if actual == 0 {
		return 1
	}
	return float64(kvcache.FP16Bytes(c.shape, c.appended)) / float64(actual)
}

// NeedsScores reports whether the policy consumes attention scores (and so
// conflicts with FlashAttention's no-materialised-scores design). Every
// policy except the purely positional StreamingLLM does.
func (c *Cache) NeedsScores() bool {
	return c.cfg.Kind != StreamingLLM
}
