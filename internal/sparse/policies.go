package sparse

import (
	"fmt"
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
)

// This file extends the eviction framework with four further surveyed
// policies (paper Table 1):
//
//   - Scissorhands (Liu et al., 2024): a counter-based persistence score —
//     a token is "persistent" if its attention weight repeatedly exceeds
//     the uniform level; evict the least persistent non-recent token.
//   - Keyformer (Adnan et al., 2024): accumulated attention with
//     gumbel-noise regularisation added to the score, which spreads
//     retention beyond pure heavy hitters.
//   - PyramidKV / SqueezeAttention (layer-level): the per-head budget
//     decays linearly from early to late layers ("pyramidal information
//     funneling"), holding the same total budget as a uniform allocation.
//   - Ada-KV (Feng et al., 2024; head-level): one shared budget pool per
//     layer, allocated across heads in proportion to their accumulated
//     attention mass; heads whose tokens matter more keep more of them.

// extended policy kinds, continuing the PolicyKind space.
const (
	// Scissorhands evicts by persistence counter.
	Scissorhands PolicyKind = iota + 100
	// Keyformer evicts by gumbel-regularised accumulated score.
	Keyformer
	// PyramidKV decays the per-head budget across layers.
	PyramidKV
	// AdaKV shares one budget pool across a layer's heads.
	AdaKV
)

// policyName extends PolicyKind.String for the added kinds.
func policyName(p PolicyKind) (string, bool) {
	switch p {
	case Scissorhands:
		return "scissorhands", true
	case Keyformer:
		return "keyformer", true
	case PyramidKV:
		return "pyramidkv", true
	case AdaKV:
		return "ada-kv", true
	}
	return "", false
}

// DefaultScissorhands returns a Scissorhands configuration: persistence
// counting with a small protected recent window.
func DefaultScissorhands(budget int) Config {
	return Config{Kind: Scissorhands, Budget: budget, Recent: budget - budget/8}
}

// DefaultKeyformer returns a Keyformer configuration.
func DefaultKeyformer(budget int) Config {
	return Config{Kind: Keyformer, Budget: budget, Recent: budget - budget/8}
}

// DefaultPyramidKV returns a PyramidKV configuration; Budget is the
// per-head average across layers (layer 0 gets ~1.5×, the last ~0.5×).
func DefaultPyramidKV(budget int) Config {
	return Config{Kind: PyramidKV, Budget: budget, Recent: budget / 8}
}

// DefaultAdaKV returns an Ada-KV configuration; Budget is the per-head
// average of the layer's shared pool.
func DefaultAdaKV(budget int) Config {
	return Config{Kind: AdaKV, Budget: budget, Recent: budget / 8}
}

// validateExtended covers the added kinds; returns (handled, error).
func (c Config) validateExtended() (bool, error) {
	switch c.Kind {
	case Scissorhands, Keyformer:
		if c.Recent >= c.Budget {
			return true, fmt.Errorf("sparse: %v recent %d must leave eviction room in budget %d", c.Kind, c.Recent, c.Budget)
		}
		return true, nil
	case PyramidKV, AdaKV:
		if c.Recent >= c.Budget {
			return true, fmt.Errorf("sparse: %v recent %d too large for budget %d", c.Kind, c.Recent, c.Budget)
		}
		return true, nil
	}
	return false, nil
}

// layerBudget returns the per-head budget for one layer under the policy.
// PyramidKV funnels: early layers keep more, late layers less, with the
// same mean as the configured budget.
func (c *Cache) layerBudget(layer int) int {
	if c.cfg.Kind != PyramidKV {
		return c.cfg.Budget
	}
	layers := c.shape.Layers
	if layers == 1 {
		return c.cfg.Budget
	}
	// Linear decay from 1.5× to 0.5× of the mean.
	frac := 1.5 - float64(layer)/float64(layers-1)
	b := int(float64(c.cfg.Budget)*frac + 0.5)
	if b < c.cfg.Recent+1 {
		b = c.cfg.Recent + 1
	}
	return b
}

// persistThreshold is the uniform-attention multiple above which a token
// counts as "hit" for Scissorhands persistence.
const persistThreshold = 1.0

// observeExtended handles score bookkeeping for the added kinds; returns
// true if the kind was handled.
func (c *Cache) observeExtended(hs *headState, weights []float32) bool {
	switch c.cfg.Kind {
	case Scissorhands:
		uniform := float32(persistThreshold) / float32(len(weights))
		for i, w := range weights {
			if w > uniform {
				hs.entries[i].accScore++ // persistence counter
			}
		}
		return true
	case Keyformer:
		for i, w := range weights {
			c.gumbelStream = c.gumbelStream*6364136223846793005 + 1442695040888963407
			u := float64(c.gumbelStream>>11) / (1 << 53)
			if u <= 0 {
				u = 1e-12
			}
			gumbel := -math.Log(-math.Log(u))
			hs.entries[i].accScore += float64(w) + 0.01*gumbel
		}
		return true
	case PyramidKV, AdaKV:
		// Both select by plain accumulated attention; the novelty is in
		// the budget allocation, not the score.
		for i, w := range weights {
			hs.entries[i].accScore += float64(w)
		}
		return true
	}
	return false
}

// selectVictimExtended picks the eviction victim for the added kinds;
// returns (index, handled).
func (c *Cache) selectVictimExtended(hs *headState) (int, bool) {
	switch c.cfg.Kind {
	case Scissorhands, Keyformer, PyramidKV, AdaKV:
		n := len(hs.entries)
		limit := n - c.cfg.Recent
		if limit <= 0 {
			limit = 1
		}
		best, bestScore := -1, math.Inf(1)
		for i := 0; i < limit; i++ {
			if hs.entries[i].accScore < bestScore {
				best, bestScore = i, hs.entries[i].accScore
			}
		}
		return best, true
	}
	return -1, false
}

// rebalanceAdaKV enforces Ada-KV's shared per-layer pool: if a layer's
// total retained entries exceed KVHeads × Budget, evict the globally
// lowest-scored non-recent entry in that layer, wherever it lives. Heads
// whose tokens carry more attention mass therefore keep more than the
// uniform share.
func (c *Cache) rebalanceAdaKV(layer int) {
	pool := c.cfg.Budget * c.shape.KVHeads
	for {
		total := 0
		for h := 0; h < c.shape.KVHeads; h++ {
			total += len(c.heads[layer][h].entries)
		}
		if total <= pool {
			return
		}
		// Find the globally weakest evictable entry; ties go to the head
		// with the least total attention mass, so high-mass heads keep
		// more than the uniform share. Every head keeps at least Recent+1
		// entries so attention never starves.
		mass := make([]float64, c.shape.KVHeads)
		for h := 0; h < c.shape.KVHeads; h++ {
			for _, e := range c.heads[layer][h].entries {
				mass[h] += e.accScore
			}
		}
		bestHead, bestIdx := -1, -1
		bestScore, bestMass := math.Inf(1), math.Inf(1)
		for h := 0; h < c.shape.KVHeads; h++ {
			hs := c.heads[layer][h]
			limit := len(hs.entries) - c.cfg.Recent
			if len(hs.entries) <= c.cfg.Recent+1 {
				continue
			}
			for i := 0; i < limit; i++ {
				s := hs.entries[i].accScore
				if s < bestScore || (s == bestScore && mass[h] < bestMass) {
					bestHead, bestIdx = h, i
					bestScore, bestMass = s, mass[h]
				}
			}
		}
		if bestHead < 0 {
			return
		}
		hs := c.heads[layer][bestHead]
		hs.entries = append(hs.entries[:bestIdx], hs.entries[bestIdx+1:]...)
		c.evictions++
	}
}

// gumbelRNGSeed seeds the Keyformer noise stream.
func gumbelRNGSeed(shape kvcache.Shape) uint64 {
	return rng.New(uint64(shape.Layers)*31 + uint64(shape.KVHeads)).Uint64()
}
