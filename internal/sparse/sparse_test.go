package sparse

import (
	"testing"
	"testing/quick"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
)

func shape() kvcache.Shape { return kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 4} }

func appendN(c *Cache, n int, seed uint64) {
	r := rng.New(seed)
	s := c.Shape()
	for i := 0; i < n; i++ {
		for l := 0; l < s.Layers; l++ {
			k := make([][]float32, s.KVHeads)
			v := make([][]float32, s.KVHeads)
			for h := 0; h < s.KVHeads; h++ {
				k[h] = make([]float32, s.HeadDim)
				v[h] = make([]float32, s.HeadDim)
				for d := 0; d < s.HeadDim; d++ {
					k[h][d] = float32(r.NormFloat64())
					v[h][d] = float32(r.NormFloat64())
				}
			}
			c.Append(l, k, v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: StreamingLLM, Budget: 10, Sinks: 3, Recent: 3},  // 3+3 != 10
		{Kind: H2O, Budget: 10, Recent: 10},                    // no heavy room
		{Kind: SnapKV, Budget: 10, ObsWindow: 20, PoolSize: 7}, // window > budget
		{Kind: SnapKV, Budget: 10, ObsWindow: 4, PoolSize: 0},  // pool 0
		{Kind: PolicyKind(99), Budget: 10},                     // unknown
		{Kind: TOVA, Budget: 0},                                // zero budget
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, cfg)
		}
	}
	for _, cfg := range []Config{DefaultStreaming(512), DefaultH2O(512), DefaultTOVA(512), DefaultSnapKV(512)} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[PolicyKind]string{StreamingLLM: "streaming-llm", H2O: "h2o", TOVA: "tova", SnapKV: "snapkv"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d prints %q", k, k.String())
		}
	}
}

func TestStreamingKeepsSinksAndRecent(t *testing.T) {
	cfg := Config{Kind: StreamingLLM, Budget: 8, Sinks: 2, Recent: 6}
	c := NewCache(shape(), cfg)
	appendN(c, 20, 1)
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			pos := c.Positions(l, h)
			if len(pos) != 8 {
				t.Fatalf("retained %d, want 8", len(pos))
			}
			// Sinks: positions 0,1. Recent: 14..19.
			if pos[0] != 0 || pos[1] != 1 {
				t.Fatalf("sinks lost: %v", pos)
			}
			for i := 2; i < 8; i++ {
				if pos[i] != 12+i {
					t.Fatalf("recent window wrong: %v", pos)
				}
			}
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
	if c.NeedsScores() {
		t.Fatal("streaming must not need scores")
	}
}

func TestStreamingUnderBudgetKeepsAll(t *testing.T) {
	c := NewCache(shape(), Config{Kind: StreamingLLM, Budget: 100, Sinks: 10, Recent: 90})
	appendN(c, 20, 2)
	if c.Len(0, 0) != 20 {
		t.Fatalf("len = %d", c.Len(0, 0))
	}
	if c.Evictions() != 0 {
		t.Fatal("should not evict under budget")
	}
}

func TestH2OKeepsHeavyHitters(t *testing.T) {
	cfg := Config{Kind: H2O, Budget: 6, Recent: 3}
	c := NewCache(shape(), cfg)
	appendN(c, 5, 3)
	// Mark position 1 as a heavy hitter on every head.
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			w := make([]float32, c.Len(l, h))
			w[1] = 0.9
			c.ObserveAttention(l, h, w)
		}
	}
	appendN(c, 10, 4)
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			pos := c.Positions(l, h)
			if len(pos) != 6 {
				t.Fatalf("retained %d", len(pos))
			}
			found := false
			for _, p := range pos {
				if p == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("heavy hitter evicted: %v", pos)
			}
		}
	}
	if !c.NeedsScores() || c.ScorePasses() == 0 {
		t.Fatal("H2O must consume score passes")
	}
}

func TestH2OBudgetInvariant(t *testing.T) {
	c := NewCache(shape(), DefaultH2O(16))
	appendN(c, 100, 5)
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			if n := c.Len(l, h); n > 16 {
				t.Fatalf("budget exceeded: %d", n)
			}
		}
	}
}

func TestTOVAEvictsLowestLastScore(t *testing.T) {
	cfg := DefaultTOVA(4)
	c := NewCache(shape(), cfg)
	appendN(c, 4, 6)
	// Score position 2 lowest.
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			c.ObserveAttention(l, h, []float32{0.4, 0.3, 0.01, 0.29})
		}
	}
	appendN(c, 1, 7)
	pos := c.Positions(0, 0)
	for _, p := range pos {
		if p == 2 {
			t.Fatalf("lowest-scored position survived: %v", pos)
		}
	}
}

func TestSnapKVPrefillCompression(t *testing.T) {
	cfg := Config{Kind: SnapKV, Budget: 10, ObsWindow: 4, PoolSize: 3}
	c := NewCache(shape(), cfg)
	appendN(c, 30, 8)
	if c.Len(0, 0) != 30 {
		t.Fatal("snapkv must not evict during prefill")
	}
	// Observation votes: make positions 5 and 6 important everywhere.
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			w := make([]float32, 30)
			w[5], w[6] = 0.5, 0.4
			c.ObserveAttention(l, h, w)
		}
	}
	c.FinishPrefill()
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			pos := c.Positions(l, h)
			if len(pos) != 10 {
				t.Fatalf("retained %d, want budget 10", len(pos))
			}
			// Observation window (26..29) always kept.
			tail := pos[len(pos)-4:]
			for i, p := range tail {
				if p != 26+i {
					t.Fatalf("observation window lost: %v", pos)
				}
			}
			found5 := false
			for _, p := range pos {
				if p == 5 {
					found5 = true
				}
			}
			if !found5 {
				t.Fatalf("high-vote token evicted: %v", pos)
			}
		}
	}
	// Decode tokens after prefill are retained (budget allows growth? No —
	// budget enforced via oldest eviction).
	appendN(c, 3, 9)
	if c.Len(0, 0) > 10 {
		t.Fatalf("decode growth unbounded: %d", c.Len(0, 0))
	}
}

func TestSnapKVShortPromptNoCompression(t *testing.T) {
	c := NewCache(shape(), Config{Kind: SnapKV, Budget: 100, ObsWindow: 8, PoolSize: 3})
	appendN(c, 10, 10)
	c.FinishPrefill()
	if c.Len(0, 0) != 10 {
		t.Fatal("short prompt should be untouched")
	}
}

func TestObserveAttentionLengthMismatchIgnored(t *testing.T) {
	c := NewCache(shape(), DefaultH2O(16))
	appendN(c, 4, 11)
	c.ObserveAttention(0, 0, []float32{0.5}) // wrong length: ignored
	if c.ScorePasses() != 0 {
		t.Fatal("mismatched observation should not count")
	}
}

func TestMemoryBytesShrinksWithBudget(t *testing.T) {
	big := NewCache(shape(), DefaultStreaming(64))
	small := NewCache(shape(), DefaultStreaming(16))
	appendN(big, 200, 12)
	appendN(small, 200, 12)
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Fatalf("smaller budget should use less memory: %d vs %d", small.MemoryBytes(), big.MemoryBytes())
	}
	if small.CompressionRatio() <= big.CompressionRatio() {
		t.Fatal("smaller budget should compress more")
	}
}

func TestPositionsSorted(t *testing.T) {
	for _, cfg := range []Config{DefaultStreaming(16), DefaultH2O(16), DefaultTOVA(16)} {
		c := NewCache(shape(), cfg)
		appendN(c, 60, 13)
		pos := c.Positions(1, 1)
		for i := 1; i < len(pos); i++ {
			if pos[i] <= pos[i-1] {
				t.Fatalf("%v: positions not increasing: %v", cfg.Kind, pos)
			}
		}
	}
}

// Property: budget is never exceeded for any policy after arbitrary appends.
func TestQuickBudgetInvariant(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawKind uint8) bool {
		n := int(rawN)%150 + 1
		var cfg Config
		switch rawKind % 3 {
		case 0:
			cfg = DefaultStreaming(12)
		case 1:
			cfg = DefaultH2O(12)
		case 2:
			cfg = DefaultTOVA(12)
		}
		c := NewCache(shape(), cfg)
		appendN(c, n, seed)
		for l := 0; l < 2; l++ {
			for h := 0; h < 2; h++ {
				if c.Len(l, h) > 12 {
					return false
				}
				if n <= 12 && c.Len(l, h) != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var c kvcache.Cache = NewCache(shape(), DefaultH2O(16))
	var _ kvcache.AttentionObserver = c.(*Cache)
}
