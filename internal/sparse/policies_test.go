package sparse

import (
	"testing"

	"rethinkkv/internal/kvcache"
)

func TestExtendedNames(t *testing.T) {
	names := map[PolicyKind]string{
		Scissorhands: "scissorhands",
		Keyformer:    "keyformer",
		PyramidKV:    "pyramidkv",
		AdaKV:        "ada-kv",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d prints %q, want %q", k, k.String(), want)
		}
	}
}

func TestExtendedConfigValidation(t *testing.T) {
	good := []Config{
		DefaultScissorhands(64), DefaultKeyformer(64),
		DefaultPyramidKV(64), DefaultAdaKV(64),
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
	}
	bad := Config{Kind: Scissorhands, Budget: 8, Recent: 8}
	if err := bad.Validate(); err == nil {
		t.Fatal("scissorhands with no eviction room should fail")
	}
}

func TestScissorhandsKeepsPersistentTokens(t *testing.T) {
	cfg := Config{Kind: Scissorhands, Budget: 6, Recent: 3}
	c := NewCache(shape(), cfg)
	appendN(c, 5, 1)
	// Token 1 repeatedly exceeds the uniform attention level.
	for step := 0; step < 3; step++ {
		for l := 0; l < 2; l++ {
			for h := 0; h < 2; h++ {
				n := c.Len(l, h)
				w := make([]float32, n)
				for i := range w {
					w[i] = 0.5 / float32(n)
				}
				w[1] = 0.9
				c.ObserveAttention(l, h, w)
			}
		}
	}
	appendN(c, 10, 2)
	pos := c.Positions(0, 0)
	found := false
	for _, p := range pos {
		if p == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("persistent token evicted: %v", pos)
	}
	if !c.NeedsScores() {
		t.Fatal("scissorhands consumes scores")
	}
}

func TestKeyformerBudgetAndDeterminism(t *testing.T) {
	mk := func() []int {
		c := NewCache(shape(), DefaultKeyformer(8))
		appendN(c, 6, 3)
		for l := 0; l < 2; l++ {
			for h := 0; h < 2; h++ {
				n := c.Len(l, h)
				w := make([]float32, n)
				for i := range w {
					w[i] = 1 / float32(n)
				}
				c.ObserveAttention(l, h, w)
			}
		}
		appendN(c, 20, 4)
		return c.Positions(1, 1)
	}
	a, b := mk(), mk()
	if len(a) > 8 {
		t.Fatalf("budget exceeded: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("keyformer gumbel noise must be deterministic")
		}
	}
}

func TestPyramidKVLayerBudgets(t *testing.T) {
	c := NewCache(shape(), DefaultPyramidKV(16))
	appendN(c, 60, 5)
	first := c.Len(0, 0)
	last := c.Len(1, 0)
	if first <= last {
		t.Fatalf("pyramid should keep more in early layers: L0=%d L1=%d", first, last)
	}
	// Mean across layers ≈ configured budget.
	mean := float64(first+last) / 2
	if mean < 12 || mean > 20 {
		t.Fatalf("mean per-layer budget %v drifted from 16", mean)
	}
}

func TestPyramidSingleLayerFallsBack(t *testing.T) {
	s := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 4}
	c := NewCache(s, DefaultPyramidKV(8))
	r := make([][]float32, 1)
	r[0] = []float32{1, 2, 3, 4}
	for i := 0; i < 20; i++ {
		c.Append(0, r, r)
	}
	if c.Len(0, 0) != 8 {
		t.Fatalf("single-layer pyramid budget = %d", c.Len(0, 0))
	}
}

func TestAdaKVSharedPool(t *testing.T) {
	cfg := DefaultAdaKV(8) // pool = 8 × 2 heads = 16 per layer
	c := NewCache(shape(), cfg)
	appendN(c, 6, 6)
	// Head 0's tokens carry all the attention mass; head 1's none.
	for step := 0; step < 4; step++ {
		for l := 0; l < 2; l++ {
			n0 := c.Len(l, 0)
			w0 := make([]float32, n0)
			for i := range w0 {
				w0[i] = 1 / float32(n0)
			}
			c.ObserveAttention(l, 0, w0)
			c.ObserveAttention(l, 1, make([]float32, c.Len(l, 1)))
		}
	}
	appendN(c, 40, 7)
	for l := 0; l < 2; l++ {
		total := c.Len(l, 0) + c.Len(l, 1)
		if total > 16 {
			t.Fatalf("layer %d pool exceeded: %d", l, total)
		}
		if c.Len(l, 0) <= c.Len(l, 1) {
			t.Fatalf("layer %d: high-mass head should keep more (%d vs %d)",
				l, c.Len(l, 0), c.Len(l, 1))
		}
		// No head starves below the protected floor.
		if c.Len(l, 1) < cfg.Recent+1 {
			t.Fatalf("layer %d head 1 starved: %d", l, c.Len(l, 1))
		}
	}
}

func TestExtendedPoliciesBudgetInvariant(t *testing.T) {
	for _, cfg := range []Config{
		DefaultScissorhands(12), DefaultKeyformer(12), DefaultPyramidKV(12), DefaultAdaKV(12),
	} {
		c := NewCache(shape(), cfg)
		appendN(c, 100, 8)
		for l := 0; l < 2; l++ {
			layerTotal := 0
			for h := 0; h < 2; h++ {
				layerTotal += c.Len(l, h)
			}
			switch cfg.Kind {
			case AdaKV:
				if layerTotal > 12*2 {
					t.Fatalf("%v: layer pool exceeded: %d", cfg.Kind, layerTotal)
				}
			case PyramidKV:
				if layerTotal > 2*c.layerBudget(l) {
					t.Fatalf("%v: layer %d budget exceeded: %d", cfg.Kind, l, layerTotal)
				}
			default:
				if layerTotal > 12*2 {
					t.Fatalf("%v: budget exceeded: %d", cfg.Kind, layerTotal)
				}
			}
		}
	}
}
