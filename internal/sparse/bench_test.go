package sparse

import (
	"testing"

	"rethinkkv/internal/kvcache"
)

func benchAppend(b *testing.B, cfg Config) {
	b.Helper()
	s := kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 64}
	for i := 0; i < b.N; i++ {
		c := NewCache(s, cfg)
		appendN(c, 512, 1)
	}
}

// Ablation 4 (DESIGN.md): eviction policy cost at the same budget —
// positional (Stream) vs score-scan (H2O/TOVA).
func BenchmarkEvictStreaming(b *testing.B) { benchAppend(b, DefaultStreaming(128)) }
func BenchmarkEvictH2O(b *testing.B)       { benchAppend(b, DefaultH2O(128)) }
func BenchmarkEvictTOVA(b *testing.B)      { benchAppend(b, DefaultTOVA(128)) }

func BenchmarkSnapKVCompress(b *testing.B) {
	s := kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 64}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewCache(s, DefaultSnapKV(128))
		appendN(c, 512, 1)
		for l := 0; l < 2; l++ {
			for h := 0; h < 2; h++ {
				w := make([]float32, c.Len(l, h))
				for j := range w {
					w[j] = 1.0 / float32(len(w))
				}
				c.ObserveAttention(l, h, w)
			}
		}
		b.StartTimer()
		c.FinishPrefill()
	}
}
