package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := NewMatrix(4, 4)
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
		for j := 0; j < 4; j++ {
			a.Set(i, j, float32(r.NormFloat64()))
		}
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A×I != A")
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatVecVecMat(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	mv := MatVec(m, []float32{1, 1})
	if mv[0] != 3 || mv[1] != 7 || mv[2] != 11 {
		t.Fatalf("matvec = %v", mv)
	}
	vm := VecMat([]float32{1, 0, 1}, m)
	if vm[0] != 6 || vm[1] != 8 {
		t.Fatalf("vecmat = %v", vm)
	}
}

func TestDotAXPYScale(t *testing.T) {
	if d := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); d != 32 {
		t.Fatalf("dot = %v", d)
	}
	dst := []float32{1, 1}
	AXPY(dst, 2, []float32{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 3.5 || dst[1] != 4.5 {
		t.Fatalf("scale = %v", dst)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	xs := []float32{1, 2, 3, 4}
	Softmax(xs)
	var sum float32
	for i, v := range xs {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax[%d] = %v out of (0,1)", i, v)
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	// Monotone: larger logit, larger probability.
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("softmax not monotone")
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	xs := []float32{1000, 1001, 1002}
	Softmax(xs)
	var sum float32
	for _, v := range xs {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed")
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestSoftmaxTempSharpens(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{1, 2}
	SoftmaxTemp(a, 0.5) // sharper
	SoftmaxTemp(b, 2.0) // flatter
	if a[1] <= b[1] {
		t.Fatalf("low temperature should sharpen: %v vs %v", a[1], b[1])
	}
}

func TestQuickSoftmaxSumsToOne(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			// Clamp to a realistic logit range.
			xs[i] = float32(math.Max(-50, math.Min(50, float64(v))))
		}
		Softmax(xs)
		var sum float64
		for _, v := range xs {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMSNorm(t *testing.T) {
	gain := []float32{1, 1, 1, 1}
	x := []float32{2, 2, 2, 2}
	out := RMSNorm(x, gain, 1e-6)
	for _, v := range out {
		if math.Abs(float64(v)-1) > 1e-3 {
			t.Fatalf("rmsnorm = %v", out)
		}
	}
	// Scale invariance: RMSNorm(c*x) == RMSNorm(x).
	x2 := []float32{20, 20, 20, 20}
	out2 := RMSNorm(x2, gain, 1e-6)
	for i := range out {
		if math.Abs(float64(out[i]-out2[i])) > 1e-3 {
			t.Fatal("rmsnorm not scale invariant")
		}
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	r := rng.New(2)
	x := make([]float32, 8)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	orig := append([]float32(nil), x...)
	var n0 float64
	for _, v := range orig {
		n0 += float64(v * v)
	}
	ApplyRoPE(x, 17)
	var n1 float64
	for _, v := range x {
		n1 += float64(v * v)
	}
	if math.Abs(n0-n1) > 1e-4*n0+1e-9 {
		t.Fatalf("RoPE changed norm: %v -> %v", n0, n1)
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	orig := append([]float32(nil), x...)
	ApplyRoPE(x, 0)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("RoPE at pos 0 should be identity")
		}
	}
}

func TestRoPERelativeProperty(t *testing.T) {
	// RoPE's defining property: dot(R(q,m), R(k,n)) depends only on m-n.
	q := []float32{0.3, -0.7, 1.1, 0.2}
	k := []float32{-0.5, 0.9, 0.1, -0.4}
	dotAt := func(m, n int) float64 {
		qq := append([]float32(nil), q...)
		kk := append([]float32(nil), k...)
		ApplyRoPE(qq, m)
		ApplyRoPE(kk, n)
		return float64(Dot(qq, kk))
	}
	d1 := dotAt(5, 3)
	d2 := dotAt(12, 10)
	if math.Abs(d1-d2) > 1e-4 {
		t.Fatalf("RoPE relative property violated: %v vs %v", d1, d2)
	}
}

func TestSiLU(t *testing.T) {
	xs := []float32{0, 10, -10}
	SiLU(xs)
	if xs[0] != 0 {
		t.Fatalf("silu(0) = %v", xs[0])
	}
	if math.Abs(float64(xs[1])-10) > 0.01 {
		t.Fatalf("silu(10) = %v", xs[1])
	}
	if math.Abs(float64(xs[2])) > 0.01 {
		t.Fatalf("silu(-10) = %v", xs[2])
	}
}

func TestArgmaxTopK(t *testing.T) {
	xs := []float32{3, 1, 4, 1, 5, 9, 2, 6}
	if Argmax(xs) != 5 {
		t.Fatalf("argmax = %d", Argmax(xs))
	}
	if Argmax(nil) != -1 {
		t.Fatal("argmax(empty) != -1")
	}
	top := TopK(xs, 3)
	if len(top) != 3 || top[0] != 5 || top[1] != 7 || top[2] != 4 {
		t.Fatalf("topk = %v", top)
	}
	if got := TopK(xs, 100); len(got) != len(xs) {
		t.Fatalf("topk overflow len = %d", len(got))
	}
	if TopK(xs, 0) != nil {
		t.Fatal("topk(0) should be nil")
	}
}

func TestDistances(t *testing.T) {
	if d := L2Dist([]float32{0, 0}, []float32{3, 4}); math.Abs(d-5) > 1e-6 {
		t.Fatalf("l2 = %v", d)
	}
	if c := CosineSim([]float32{1, 0}, []float32{1, 0}); math.Abs(c-1) > 1e-9 {
		t.Fatalf("cos parallel = %v", c)
	}
	if c := CosineSim([]float32{1, 0}, []float32{0, 1}); math.Abs(c) > 1e-9 {
		t.Fatalf("cos orthogonal = %v", c)
	}
	if c := CosineSim([]float32{0, 0}, []float32{1, 1}); c != 0 {
		t.Fatalf("cos zero vector = %v", c)
	}
}

func TestMeanAbs(t *testing.T) {
	if m := MeanAbs([]float32{-1, 1, -3, 3}); m != 2 {
		t.Fatalf("meanabs = %v", m)
	}
	if MeanAbs(nil) != 0 {
		t.Fatal("meanabs empty != 0")
	}
}

func TestFromRowsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("clone aliases parent")
	}
}

// randVec fills a deterministic pseudo-random vector without importing rng.
func randVec(n int, seed float32) []float32 {
	v := make([]float32, n)
	x := seed
	for i := range v {
		x = x*1103.515245 + 12.345
		x -= float32(int(x/97)) * 97
		v[i] = x/48.5 - 1
	}
	return v
}

func TestIntoVariantsBitIdentical(t *testing.T) {
	// Odd sizes exercise the remainder lanes of the 4-wide kernels.
	for _, shape := range [][2]int{{4, 4}, {5, 7}, {16, 64}, {13, 130}} {
		rows, cols := shape[0], shape[1]
		m := NewMatrix(rows, cols)
		copy(m.Data, randVec(rows*cols, float32(rows)))
		v := randVec(cols, 3)
		u := randVec(rows, 5)
		gain := randVec(rows, 9)

		want := MatVec(m, v)
		got := make([]float32, rows)
		MatVecInto(got, m, v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d MatVecInto[%d] = %v, want %v", rows, cols, i, got[i], want[i])
			}
		}

		wantVM := VecMat(u, m)
		gotVM := make([]float32, cols)
		for i := range gotVM {
			gotVM[i] = 99 // Into must fully overwrite
		}
		VecMatInto(gotVM, u, m)
		for i := range wantVM {
			if gotVM[i] != wantVM[i] {
				t.Fatalf("%dx%d VecMatInto[%d] = %v, want %v", rows, cols, i, gotVM[i], wantVM[i])
			}
		}

		wantN := RMSNorm(u, gain, 1e-5)
		gotN := make([]float32, rows)
		RMSNormInto(gotN, u, gain, 1e-5)
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("RMSNormInto[%d] mismatch", i)
			}
		}
	}
}

func TestVecMatIntoSkipsZeros(t *testing.T) {
	m := NewMatrix(3, 4)
	copy(m.Data, randVec(12, 2))
	u := []float32{0.5, 0, -1.25} // middle row skipped
	want := VecMat(u, m)
	got := make([]float32, 4)
	VecMatInto(got, u, m)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zero-skip mismatch at %d", i)
		}
	}
}

func TestDotStridedMatchesDot(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 257} {
		d, stride := 16, 48
		q := randVec(d, 11)
		buf := randVec(maxTest(n*stride, 1), 13)
		dst := make([]float32, n)
		DotStrided(dst, q, buf, stride)
		for i := 0; i < n; i++ {
			if want := Dot(q, buf[i*stride:i*stride+d]); dst[i] != want {
				t.Fatalf("n=%d entry %d: %v != %v", n, i, dst[i], want)
			}
		}
	}
}

func TestAXPYStridedMatchesAXPY(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100} {
		for _, d := range []int{3, 4, 16, 18} { // odd d exercises remainder lanes
			stride := d + 7
			w := randVec(n, 17)
			buf := randVec(maxTest(n*stride, 1), 19)
			got := randVec(d, 23)
			want := append([]float32(nil), got...)
			AXPYStrided(got, w, buf, stride)
			for i := 0; i < n; i++ {
				AXPY(want, w[i], buf[i*stride:i*stride+d])
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d d=%d lane %d: %v != %v", n, d, j, got[j], want[j])
				}
			}
		}
	}
}

func TestStridedPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("dot stride", func() { DotStrided(make([]float32, 1), make([]float32, 8), make([]float32, 8), 4) })
	assertPanics("dot short", func() { DotStrided(make([]float32, 3), make([]float32, 4), make([]float32, 8), 4) })
	assertPanics("axpy stride", func() { AXPYStrided(make([]float32, 8), make([]float32, 1), make([]float32, 8), 4) })
	assertPanics("axpy short", func() { AXPYStrided(make([]float32, 4), make([]float32, 3), make([]float32, 8), 4) })
}

func maxTest(a, b int) int {
	if a > b {
		return a
	}
	return b
}
