package tensor

// Batched (weight-stationary) matrix–matrix kernels for fused batched
// decode. Each kernel computes, for every batch lane b, exactly the vector
// product its single-lane twin computes — MatMatInto ↔ MatVecInto,
// MatTMatInto ↔ VecMatInto — so results are bit-identical per lane, while
// the batch-level structure streams each weight matrix once per decode
// step instead of once per running request.
//
// Two empirical facts about this hardware (pure scalar Go) shape the
// implementation, both measured by the GEMM benchmarks in gemm_test.go:
//
//  1. The row-major four-row dot-product loop (MatVecInto's shape) is the
//     fastest matrix–vector traversal Go's compiler produces: every weight
//     element is loaded once, consumed once, and never needs a register
//     copy. The column-major traversal VecMatInto must use for row-major
//     weights runs ~1.6-1.8× slower per multiply-accumulate.
//  2. Register-blocking a weight panel across multiple lanes does not beat
//     per-lane streaming over a transposed copy: the extra live values
//     push the register allocator into spills that cost more than the
//     shared loads save. (The weights are L2/L3-resident, and scalar
//     compute — not memory bandwidth — is the binding resource.) The
//     lane-pair tile in MatTMatColsInto survives only as the fallback for
//     callers without a transposed copy, where it still beats the
//     column-major per-lane loop by ~1.3×.
//
// The batched fast path therefore stores a transposed copy of each
// projection matrix (built once at model construction; weights are
// immutable) and runs the row-major loop per lane over it: MatTMatTransInto.
// Bit-identity is preserved because transposing only changes the traversal,
// not the per-output reduction order — dst[j] = Σ_k x[k]·W[k][j] accumulates
// over k ascending in both formulations, with identical multiply operands.
// The one semantic difference is VecMatInto's skip of exactly-zero
// activations, which the row-major loop does not perform; the kernels
// handle it by dispatch: a lane whose activation vector contains no exact
// zero (checked in O(rows), the overwhelmingly common case for real hidden
// states) takes the fast path on which the skip could never have fired,
// and a lane with an exact zero falls back to the skip-exact column-major
// kernel.

// MatMatInto computes dst[b] = m × xs[b] for every lane b — the batched
// counterpart of MatVecInto (row-major weights, e.g. the LM head). Each
// lane runs MatVecInto's exact four-row loop, so dst[b] is bit-identical
// to MatVecInto(dst[b], m, xs[b]); batching keeps the row panels hot in
// cache across consecutive lanes instead of re-streaming the full weight
// set between sessions. It panics on shape mismatch.
func MatMatInto(dst [][]float32, m *Matrix, xs [][]float32) {
	if len(dst) != len(xs) {
		panic("tensor: matmat lane count mismatch")
	}
	for b := range xs {
		if len(xs[b]) != m.Cols {
			panic("tensor: matmat shape mismatch")
		}
		if len(dst[b]) != m.Rows {
			panic("tensor: matmat dst length mismatch")
		}
	}
	MatMatRowsInto(dst, m, xs, 0, m.Rows)
}

// MatMatRowsInto computes rows [r0, r1) of MatMatInto — the row-sharded
// entry point parallel drivers split across workers. Shards write disjoint
// dst ranges, so concurrent calls with disjoint [r0, r1) are safe and the
// assembled result is bit-identical to one full-range call. Shapes must
// already satisfy MatMatInto's contract.
func MatMatRowsInto(dst [][]float32, m *Matrix, xs [][]float32, r0, r1 int) {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic("tensor: matmat row range out of bounds")
	}
	for b := range xs {
		matVecRows(dst[b], m.Data, m.Cols, xs[b], r0, r1)
	}
}

// matVecRows is MatVecInto's four-row register tile restricted to rows
// [r0, r1): four independent accumulator chains, each weight element
// loaded once and consumed once. Per row the summation order over j is
// exactly Dot's, so results are bit-identical to MatVecInto.
func matVecRows(dst []float32, data []float32, cols int, x []float32, r0, r1 int) {
	x = x[:cols]
	i := r0
	for ; i+4 <= r1; i += 4 {
		q0 := data[i*cols : i*cols+cols]
		q1 := data[(i+1)*cols : (i+1)*cols+cols][:len(q0)]
		q2 := data[(i+2)*cols : (i+2)*cols+cols][:len(q0)]
		q3 := data[(i+3)*cols : (i+3)*cols+cols][:len(q0)]
		var s0, s1, s2, s3 float32
		for j, w := range q0 {
			a := x[j]
			s0 += w * a
			s1 += q1[j] * a
			s2 += q2[j] * a
			s3 += q3[j] * a
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < r1; i++ {
		row := data[i*cols : i*cols+cols]
		var s float32
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MatTMatInto computes dst[b] = xs[b]ᵀ × m for every lane b — the batched
// counterpart of VecMatInto (column-major traversal of row-major weights,
// used by every per-layer projection). Per (lane, column) the reduction
// order over rows — and VecMatInto's skip of exactly-zero activations — is
// unchanged, so dst[b] is bit-identical to VecMatInto(dst[b], xs[b], m).
// Zero-free lanes are paired through a register-tiled fast path that
// streams each four-column weight slab once per lane pair. When a
// transposed copy of m is available, MatTMatTransInto is faster still.
// It panics on shape mismatch.
func MatTMatInto(dst, xs [][]float32, m *Matrix) {
	if len(dst) != len(xs) {
		panic("tensor: mattmat lane count mismatch")
	}
	for b := range xs {
		if len(xs[b]) != m.Rows {
			panic("tensor: mattmat shape mismatch")
		}
		if len(dst[b]) != m.Cols {
			panic("tensor: mattmat dst length mismatch")
		}
	}
	MatTMatColsInto(dst, xs, m, 0, m.Cols)
}

// MatTMatColsInto computes columns [c0, c1) of MatTMatInto — the
// column-sharded entry point parallel drivers split across workers.
// Shards write disjoint dst ranges, so concurrent calls with disjoint
// [c0, c1) are safe and the assembled result is bit-identical to one
// full-range call. Shapes must already satisfy MatTMatInto's contract.
func MatTMatColsInto(dst, xs [][]float32, m *Matrix, c0, c1 int) {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic("tensor: mattmat column range out of bounds")
	}
	rows := m.Rows
	cols := m.Cols
	data := m.Data
	b := 0
	for ; b+2 <= len(xs); b += 2 {
		x0, x1 := xs[b][:rows], xs[b+1][:rows]
		d0, d1 := dst[b], dst[b+1]
		if hasZero(x0) || hasZero(x1) {
			matTMatSkipLane(d0, x0, data, cols, c0, c1)
			matTMatSkipLane(d1, x1, data, cols, c0, c1)
			continue
		}
		// Branch-free fast tile: no activation is exactly zero, so the
		// per-lane zero-skip could never fire and every product is
		// accumulated — in the same per-element order as VecMatInto. One
		// weight register is reused across the lane pair (load once, two
		// multiply-accumulates); eight accumulators plus two activations
		// and one weight stay within the register file.
		j := c0
		for ; j+4 <= c1; j += 4 {
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			off := j
			for k := 0; k < rows; k++ {
				v0, v1 := x0[k], x1[k]
				r := data[off : off+4 : off+4]
				off += cols
				w := r[0]
				s00 += v0 * w
				s10 += v1 * w
				w = r[1]
				s01 += v0 * w
				s11 += v1 * w
				w = r[2]
				s02 += v0 * w
				s12 += v1 * w
				w = r[3]
				s03 += v0 * w
				s13 += v1 * w
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < c1; j++ {
			var s0, s1 float32
			off := j
			for k := 0; k < rows; k++ {
				w := data[off]
				off += cols
				s0 += x0[k] * w
				s1 += x1[k] * w
			}
			d0[j], d1[j] = s0, s1
		}
	}
	for ; b < len(xs); b++ {
		matTMatSkipLane(dst[b], xs[b][:rows], data, cols, c0, c1)
	}
}

// MatTMatTransInto is MatTMatInto given both m and its transpose mT
// (mT = Transpose(m), built once for immutable weights): zero-free lanes
// run the fast row-major loop over mT, lanes with exact-zero activations
// reproduce VecMatInto's skip over m. Output is bit-identical to
// VecMatInto(dst[b], xs[b], m) for every lane. It panics on shape
// mismatch, including mT not being m's transpose shape.
func MatTMatTransInto(dst, xs [][]float32, m, mT *Matrix) {
	if len(dst) != len(xs) {
		panic("tensor: mattmat lane count mismatch")
	}
	if mT.Rows != m.Cols || mT.Cols != m.Rows {
		panic("tensor: mattmat transpose shape mismatch")
	}
	for b := range xs {
		if len(xs[b]) != m.Rows {
			panic("tensor: mattmat shape mismatch")
		}
		if len(dst[b]) != m.Cols {
			panic("tensor: mattmat dst length mismatch")
		}
	}
	MatTMatTransColsInto(dst, xs, m, mT, 0, m.Cols)
}

// MatTMatTransColsInto computes output columns [c0, c1) of
// MatTMatTransInto (rows [c0, c1) of mT) — the sharded entry point.
// Shards write disjoint dst ranges; the assembled result is bit-identical
// to one full-range call. Shapes must already satisfy MatTMatTransInto's
// contract.
func MatTMatTransColsInto(dst, xs [][]float32, m, mT *Matrix, c0, c1 int) {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic("tensor: mattmat column range out of bounds")
	}
	rows := m.Rows
	for b := range xs {
		x := xs[b][:rows]
		if hasZero(x) {
			matTMatSkipLane(dst[b], x, m.Data, m.Cols, c0, c1)
			continue
		}
		matVecRows(dst[b], mT.Data, mT.Cols, x, c0, c1)
	}
}

// VecMatTransInto is VecMatInto given both m and its transpose mT
// (mT = Transpose(m), built once for immutable weights) — the single-stream
// backport of the batched plane's per-lane dispatch: a zero-free activation
// vector takes the row-major four-row loop over mT (~1.5× faster per
// multiply-accumulate than the column-major traversal, see the file
// comment), and a vector containing an exact zero falls back to VecMatInto
// so its zero-skip is reproduced. Output is bit-identical to
// VecMatInto(dst, x, m) either way: transposing only changes the traversal,
// not the per-output reduction order. It panics on shape mismatch.
func VecMatTransInto(dst, x []float32, m, mT *Matrix) {
	if mT.Rows != m.Cols || mT.Cols != m.Rows {
		panic("tensor: vecmat transpose shape mismatch")
	}
	if len(x) != m.Rows {
		panic("tensor: vecmat shape mismatch")
	}
	if len(dst) != m.Cols {
		panic("tensor: vecmat dst length mismatch")
	}
	if hasZero(x) {
		VecMatInto(dst, x, m)
		return
	}
	matVecRows(dst, mT.Data, mT.Cols, x, 0, mT.Rows)
}

// matTMatSkipLane is the single-lane column-range kernel with VecMatInto's
// zero-skip — the reference arithmetic the fast paths must match, and the
// fallback for lanes whose activations contain exact zeros.
func matTMatSkipLane(d, x []float32, data []float32, cols, c0, c1 int) {
	j := c0
	for ; j+4 <= c1; j += 4 {
		var s0, s1, s2, s3 float32
		for k, vv := range x {
			if vv == 0 {
				continue
			}
			base := k*cols + j
			r := data[base : base+4 : base+4]
			s0 += vv * r[0]
			s1 += vv * r[1]
			s2 += vv * r[2]
			s3 += vv * r[3]
		}
		d[j], d[j+1], d[j+2], d[j+3] = s0, s1, s2, s3
	}
	for ; j < c1; j++ {
		var s float32
		for k, vv := range x {
			if vv == 0 {
				continue
			}
			s += vv * data[k*cols+j]
		}
		d[j] = s
	}
}

// hasZero reports whether any element is exactly zero — the dispatch
// predicate for the zero-skip-free fast paths.
func hasZero(x []float32) bool {
	for _, v := range x {
		if v == 0 {
			return true
		}
	}
	return false
}

// Transpose returns mᵀ as a new matrix. The fused decode plane transposes
// each (immutable) projection matrix once at model construction so its
// batched steps can traverse weights row-major.
func Transpose(m *Matrix) *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*m.Rows+i] = v
		}
	}
	return t
}

// RMSNormRowsInto applies RMSNormInto lane-wise: dst[b] = RMSNorm(xs[b],
// gain). Normalisation is O(B·H) and lane-local, so the batched form is a
// plain loop — it exists so the fused forward pass reads as one batched
// pipeline and the arithmetic stays shared with the single-lane path.
func RMSNormRowsInto(dst, xs [][]float32, gain []float32, eps float32) {
	if len(dst) != len(xs) {
		panic("tensor: rmsnorm lane count mismatch")
	}
	for b := range xs {
		RMSNormInto(dst[b], xs[b], gain, eps)
	}
}
