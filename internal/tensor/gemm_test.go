package tensor

import (
	"math"
	"testing"
)

// lanes builds b pseudo-random activation vectors of length n, with a few
// exact zeros mixed in so the batched kernels' zero-skip dispatch is
// exercised.
func lanes(b, n int, seed uint64) [][]float32 {
	xs := make([][]float32, b)
	s := seed
	for i := range xs {
		xs[i] = make([]float32, n)
		for j := range xs[i] {
			s = s*6364136223846793005 + 1442695040888963407
			if s%17 == 0 {
				continue // leave an exact zero
			}
			xs[i][j] = float32(int64(s>>33)%1000) / 999
		}
	}
	return xs
}

func testMatrix(rows, cols int, seed uint64) *Matrix {
	m := NewMatrix(rows, cols)
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		m.Data[i] = float32(int64(s>>33)%2000-1000) / 997
	}
	return m
}

// shapes covers the tiny model's projection shapes plus ragged remainders.
var gemmShapes = [][2]int{{64, 64}, {64, 128}, {128, 64}, {64, 32}, {512, 64}, {13, 7}, {7, 13}, {4, 4}}

// TestMatMatIntoMatchesMatVecInto pins the batched row-major kernel to its
// single-lane twin bit-for-bit across lane counts and shapes.
func TestMatMatIntoMatchesMatVecInto(t *testing.T) {
	for _, b := range []int{1, 2, 3, 5, 8} {
		for _, shape := range gemmShapes {
			m := testMatrix(shape[0], shape[1], uint64(b)*31)
			xs := lanes(b, shape[1], uint64(b)*7+1)
			want := make([][]float32, b)
			got := make([][]float32, b)
			for i := 0; i < b; i++ {
				want[i] = make([]float32, shape[0])
				got[i] = make([]float32, shape[0])
				MatVecInto(want[i], m, xs[i])
			}
			MatMatInto(got, m, xs)
			for i := 0; i < b; i++ {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("b=%d shape=%v lane %d row %d: %g != %g", b, shape, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestMatTMatIntoMatchesVecMatInto pins the batched column-major kernel
// (zero-skip included) to VecMatInto bit-for-bit, and the transposed fast
// path likewise.
func TestMatTMatIntoMatchesVecMatInto(t *testing.T) {
	for _, b := range []int{1, 2, 3, 5, 8} {
		for _, shape := range gemmShapes {
			m := testMatrix(shape[0], shape[1], uint64(b)*131)
			mT := Transpose(m)
			xs := lanes(b, shape[0], uint64(b)*19+3)
			want := make([][]float32, b)
			got := make([][]float32, b)
			gotT := make([][]float32, b)
			for i := 0; i < b; i++ {
				want[i] = make([]float32, shape[1])
				got[i] = make([]float32, shape[1])
				gotT[i] = make([]float32, shape[1])
				VecMatInto(want[i], xs[i], m)
			}
			MatTMatInto(got, xs, m)
			MatTMatTransInto(gotT, xs, m, mT)
			for i := 0; i < b; i++ {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("b=%d shape=%v lane %d col %d: %g != %g", b, shape, i, j, got[i][j], want[i][j])
					}
					if gotT[i][j] != want[i][j] {
						t.Fatalf("trans b=%d shape=%v lane %d col %d: %g != %g", b, shape, i, j, gotT[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestVecMatTransIntoMatchesVecMatInto pins the single-stream transposed
// dispatch (the backport of the batched plane's per-lane fast path to
// ForwardInto's projections) to VecMatInto bit-for-bit, on activations with
// exact zeros (skip fallback) and strictly zero-free ones (row-major fast
// path).
func TestVecMatTransIntoMatchesVecMatInto(t *testing.T) {
	for _, shape := range gemmShapes {
		m := testMatrix(shape[0], shape[1], uint64(shape[0])*37)
		mT := Transpose(m)
		for variant, x := range map[string][]float32{
			"with-zeros": lanes(1, shape[0], uint64(shape[1])*13+5)[0],
			"zero-free":  lanes(1, shape[0], uint64(shape[1])*13+5)[0],
		} {
			if variant == "zero-free" {
				x = append([]float32(nil), x...)
				for j := range x {
					if x[j] == 0 {
						x[j] = 0.25
					}
				}
			}
			want := make([]float32, shape[1])
			got := make([]float32, shape[1])
			VecMatInto(want, x, m)
			VecMatTransInto(got, x, m, mT)
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("%s shape=%v col %d: %g != %g", variant, shape, j, got[j], want[j])
				}
			}
		}
	}
	// Contract panics: transpose shape must actually be the transpose.
	m := testMatrix(8, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched transpose accepted")
		}
	}()
	VecMatTransInto(make([]float32, 4), make([]float32, 8), m, m)
}

// TestMatTMatTransZeroFreeLanes drives the transposed fast path with
// strictly zero-free activations (so the row-major loop, not the skip
// fallback, is under test) and pins it to VecMatInto.
func TestMatTMatTransZeroFreeLanes(t *testing.T) {
	const b = 4
	m := testMatrix(96, 80, 7)
	mT := Transpose(m)
	xs := lanes(b, 96, 11)
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] == 0 {
				xs[i][j] = 0.125
			}
		}
	}
	for i := 0; i < b; i++ {
		want := make([]float32, 80)
		got := make([]float32, 80)
		VecMatInto(want, xs[i], m)
		MatTMatTransInto([][]float32{got}, [][]float32{xs[i]}, m, mT)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("lane %d col %d: %g != %g", i, j, got[j], want[j])
			}
		}
	}
}

// TestShardedRangesAssemble verifies that disjoint row/column shards
// assemble to exactly the full-range result — the invariant the parallel
// drivers rely on.
func TestShardedRangesAssemble(t *testing.T) {
	const b = 8
	m := testMatrix(96, 64, 5)
	xs := lanes(b, 64, 11)
	want := make([][]float32, b)
	got := make([][]float32, b)
	for i := 0; i < b; i++ {
		want[i] = make([]float32, 96)
		got[i] = make([]float32, 96)
	}
	MatMatInto(want, m, xs)
	for _, cut := range []int{0, 1, 33, 95, 96} {
		for i := range got {
			for j := range got[i] {
				got[i][j] = 0
			}
		}
		MatMatRowsInto(got, m, xs, 0, cut)
		MatMatRowsInto(got, m, xs, cut, 96)
		for i := 0; i < b; i++ {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("rows cut=%d lane %d row %d: %g != %g", cut, i, j, got[i][j], want[i][j])
				}
			}
		}
	}

	mt := testMatrix(64, 96, 17)
	mtT := Transpose(mt)
	xst := lanes(b, 64, 23)
	wantT := make([][]float32, b)
	gotT := make([][]float32, b)
	for i := 0; i < b; i++ {
		wantT[i] = make([]float32, 96)
		gotT[i] = make([]float32, 96)
	}
	MatTMatInto(wantT, xst, mt)
	for _, cut := range []int{0, 2, 37, 96} {
		for variant := 0; variant < 2; variant++ {
			for i := range gotT {
				for j := range gotT[i] {
					gotT[i][j] = 0
				}
			}
			if variant == 0 {
				MatTMatColsInto(gotT, xst, mt, 0, cut)
				MatTMatColsInto(gotT, xst, mt, cut, 96)
			} else {
				MatTMatTransColsInto(gotT, xst, mt, mtT, 0, cut)
				MatTMatTransColsInto(gotT, xst, mt, mtT, cut, 96)
			}
			for i := 0; i < b; i++ {
				for j := range wantT[i] {
					if gotT[i][j] != wantT[i][j] {
						t.Fatalf("variant %d cols cut=%d lane %d col %d: %g != %g", variant, cut, i, j, gotT[i][j], wantT[i][j])
					}
				}
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := testMatrix(5, 9, 3)
	mT := Transpose(m)
	if mT.Rows != 9 || mT.Cols != 5 {
		t.Fatalf("transpose shape %dx%d", mT.Rows, mT.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mT.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestRMSNormRowsInto pins the batched norm to the single-lane kernel.
func TestRMSNormRowsInto(t *testing.T) {
	const b, n = 5, 64
	xs := lanes(b, n, 3)
	gain := lanes(1, n, 9)[0]
	want := make([][]float32, b)
	got := make([][]float32, b)
	for i := 0; i < b; i++ {
		want[i] = make([]float32, n)
		got[i] = make([]float32, n)
		RMSNormInto(want[i], xs[i], gain, 1e-5)
	}
	RMSNormRowsInto(got, xs, gain, 1e-5)
	for i := 0; i < b; i++ {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("lane %d elem %d: %g != %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestRoPECachedMatchesApplyRoPE pins the table-driven rotation to the
// inline math.Pow/Sincos path bit-for-bit across positions and dims.
func TestRoPECachedMatchesApplyRoPE(t *testing.T) {
	for _, d := range []int{4, 16, 32, 128} {
		freqs := RoPEFreqs(d)
		sin := make([]float32, d/2)
		cos := make([]float32, d/2)
		for _, pos := range []int{0, 1, 17, 255, 4095} {
			want := lanes(1, d, uint64(d+pos))[0]
			got := append([]float32(nil), want...)
			ApplyRoPE(want, pos)
			RoPESincosInto(sin, cos, freqs, pos)
			ApplyRoPECached(got, sin, cos)
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("d=%d pos=%d elem %d: %x != %x", d, pos, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

func TestBatchedKernelsAllocFree(t *testing.T) {
	const b = 8
	m := testMatrix(64, 64, 1)
	mT := Transpose(m)
	xs, dst := benchLanes(b, 64)
	for i := range dst {
		dst[i] = make([]float32, 64)
	}
	freqs := RoPEFreqs(16)
	sin := make([]float32, 8)
	cos := make([]float32, 8)
	if n := testing.AllocsPerRun(10, func() {
		MatMatInto(dst, m, xs)
		MatTMatInto(dst, xs, m)
		MatTMatTransInto(dst, xs, m, mT)
		RoPESincosInto(sin, cos, freqs, 37)
		ApplyRoPECached(xs[0][:16], sin, cos)
	}); n != 0 {
		t.Fatalf("batched kernels allocated %v per run", n)
	}
}

// Benchmarks: per-lane column-major kernels called B times (the
// per-session decode plane) vs the batched transposed path, at the tiny
// model's projection shapes. These quantify the weight-layout win the
// fused decode path is built on.

// benchLanes builds zero-free activations: real hidden states essentially
// never contain exact zeros, so the batched kernels' fast tiles are the
// steady-state path the benchmarks should price.
func benchLanes(b int, n int) ([][]float32, [][]float32) {
	xs := lanes(b, n, 42)
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] == 0 {
				xs[i][j] = 0.25
			}
		}
	}
	dst := make([][]float32, b)
	return xs, dst
}

func benchVecMatx8(b *testing.B, rows, cols int) {
	m := testMatrix(rows, cols, 1)
	xs, dst := benchLanes(8, rows)
	for i := range dst {
		dst[i] = make([]float32, cols)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 8; l++ {
			VecMatInto(dst[l], xs[l], m)
		}
	}
}

func benchMatTMatTrans(b *testing.B, rows, cols int) {
	m := testMatrix(rows, cols, 1)
	mT := Transpose(m)
	xs, dst := benchLanes(8, rows)
	for i := range dst {
		dst[i] = make([]float32, cols)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatTMatTransInto(dst, xs, m, mT)
	}
}

func BenchmarkGEMVx8VecMat64x128(b *testing.B)    { benchVecMatx8(b, 64, 128) }
func BenchmarkGEMMBatch8Trans64x128(b *testing.B) { benchMatTMatTrans(b, 64, 128) }
func BenchmarkGEMVx8VecMat128x64(b *testing.B)    { benchVecMatx8(b, 128, 64) }
func BenchmarkGEMMBatch8Trans128x64(b *testing.B) { benchMatTMatTrans(b, 128, 64) }
func BenchmarkGEMVx8VecMat64x64(b *testing.B)     { benchVecMatx8(b, 64, 64) }
func BenchmarkGEMMBatch8Trans64x64(b *testing.B)  { benchMatTMatTrans(b, 64, 64) }
func BenchmarkGEMMBatch8MatTMat64x128(b *testing.B) {
	m := testMatrix(64, 128, 1)
	xs, dst := benchLanes(8, 64)
	for i := range dst {
		dst[i] = make([]float32, 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatTMatInto(dst, xs, m)
	}
}

func BenchmarkGEMVx8MatVec512x64(b *testing.B) {
	m := testMatrix(512, 64, 1)
	xs, dst := benchLanes(8, 64)
	for i := range dst {
		dst[i] = make([]float32, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 8; l++ {
			MatVecInto(dst[l], m, xs[l])
		}
	}
}

func BenchmarkGEMMBatch8MatMat512x64(b *testing.B) {
	m := testMatrix(512, 64, 1)
	xs, dst := benchLanes(8, 64)
	for i := range dst {
		dst[i] = make([]float32, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMatInto(dst, m, xs)
	}
}
