// Package tensor implements the minimal float32 linear algebra needed to run
// a real (tiny) transformer in pure Go: row-major matrices, matmul, softmax,
// RMSNorm, rotary position embeddings, and sampling helpers.
//
// The goal is correctness and determinism first: the tiny model exists so
// that compression algorithms (quantisation, eviction) operate on real
// tensors and their accuracy effects are genuine. Wall-clock performance of
// full-size models is handled by the analytical cost model in internal/perf.
// For the decode hot path, every allocating kernel has a destination-passing
// twin (MatVecInto, VecMatInto, RMSNormInto) and flat-KV variants
// (DotStrided, AXPYStrided) that write into caller-owned buffers, keeping
// steady-state decode allocation-free; the *Into/strided variants perform
// bit-identical arithmetic to their allocating counterparts.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length and
// non-empty.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("tensor: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMul returns a × b. It panics if the inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatVec returns m × v as a new vector. It panics on dimension mismatch.
func MatVec(m *Matrix, v []float32) []float32 {
	out := make([]float32, m.Rows)
	MatVecInto(out, m, v)
	return out
}

// MatVecInto computes m × v into the caller-owned dst (length m.Rows),
// allocating nothing. Rows are processed four at a time with independent
// accumulators — each row's summation order is unchanged, so results are
// bit-identical to per-row Dot. It panics on dimension mismatch.
func MatVecInto(dst []float32, m *Matrix, v []float32) {
	if m.Cols != len(v) {
		panic("tensor: matvec shape mismatch")
	}
	if len(dst) != m.Rows {
		panic("tensor: matvec dst length mismatch")
	}
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Row(i)[:len(v)]
		r1 := m.Row(i + 1)[:len(v)]
		r2 := m.Row(i + 2)[:len(v)]
		r3 := m.Row(i + 3)[:len(v)]
		var s0, s1, s2, s3 float32
		for j, vj := range v {
			s0 += vj * r0[j]
			s1 += vj * r1[j]
			s2 += vj * r2[j]
			s3 += vj * r3[j]
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
}

// VecMat returns vᵀ × m as a new vector (length m.Cols).
func VecMat(v []float32, m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	VecMatInto(out, v, m)
	return out
}

// VecMatInto computes vᵀ × m into the caller-owned dst (length m.Cols),
// allocating nothing. The loop runs column-major with register accumulators
// (four output lanes at a time), so no dst element round-trips through
// memory between input rows; per-element accumulation order over k — and the
// zero-skip — match the row-major formulation exactly, so results are
// bit-identical to VecMat. It panics on dimension mismatch.
func VecMatInto(dst, v []float32, m *Matrix) {
	if m.Rows != len(v) {
		panic("tensor: vecmat shape mismatch")
	}
	if len(dst) != m.Cols {
		panic("tensor: vecmat dst length mismatch")
	}
	cols := m.Cols
	data := m.Data
	j := 0
	for ; j+4 <= cols; j += 4 {
		var s0, s1, s2, s3 float32
		for k, vv := range v {
			if vv == 0 {
				continue
			}
			base := k*cols + j
			r := data[base : base+4 : base+4]
			s0 += vv * r[0]
			s1 += vv * r[1]
			s2 += vv * r[2]
			s3 += vv * r[3]
		}
		dst[j], dst[j+1], dst[j+2], dst[j+3] = s0, s1, s2, s3
	}
	for ; j < cols; j++ {
		var s float32
		for k, vv := range v {
			if vv == 0 {
				continue
			}
			s += vv * data[k*cols+j]
		}
		dst[j] = s
	}
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// AXPY computes dst += alpha * x in place.
func AXPY(dst []float32, alpha float32, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: axpy length mismatch")
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// DotStrided computes dst[i] = q · buf[i*stride : i*stride+len(q)] for every
// i in range dst — the score pass of attention over a flat, strided KV
// buffer. Entries are processed four at a time with independent accumulator
// chains; within each entry the summation order is unchanged, so results are
// bit-identical to calling Dot on per-token views of the slice-of-slices
// layout. It panics if buf is too short.
func DotStrided(dst, q, buf []float32, stride int) {
	d := len(q)
	if stride < d {
		panic("tensor: dotstrided stride below vector length")
	}
	n := len(dst)
	if n > 0 && (n-1)*stride+d > len(buf) {
		panic("tensor: dotstrided buffer too short")
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		r0 := buf[i*stride : i*stride+d]
		r1 := buf[(i+1)*stride : (i+1)*stride+d]
		r2 := buf[(i+2)*stride : (i+2)*stride+d]
		r3 := buf[(i+3)*stride : (i+3)*stride+d]
		var s0, s1, s2, s3 float32
		for j, qj := range q {
			s0 += qj * r0[j]
			s1 += qj * r1[j]
			s2 += qj * r2[j]
			s3 += qj * r3[j]
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		dst[i] = Dot(q, buf[i*stride:i*stride+d])
	}
}

// AXPYStrided accumulates dst += Σ_i weights[i] * buf[i*stride : i*stride+len(dst)]
// — the value-aggregation pass of attention over a flat, strided KV buffer.
// The loop runs column-major with register accumulators (four output lanes
// at a time), so each dst element never round-trips through memory between
// entries; per-element accumulation order over i is unchanged, making
// results bit-identical to the per-token AXPY loop over the slice-of-slices
// layout. It panics if buf is too short.
func AXPYStrided(dst, weights, buf []float32, stride int) {
	d := len(dst)
	if stride < d {
		panic("tensor: axpystrided stride below vector length")
	}
	n := len(weights)
	if n > 0 && (n-1)*stride+d > len(buf) {
		panic("tensor: axpystrided buffer too short")
	}
	if n == 0 {
		return
	}
	j := 0
	for ; j+4 <= d; j += 4 {
		s0, s1, s2, s3 := dst[j], dst[j+1], dst[j+2], dst[j+3]
		for i, w := range weights {
			base := i*stride + j
			r := buf[base : base+4 : base+4]
			s0 += w * r[0]
			s1 += w * r[1]
			s2 += w * r[2]
			s3 += w * r[3]
		}
		dst[j], dst[j+1], dst[j+2], dst[j+3] = s0, s1, s2, s3
	}
	for ; j < d; j++ {
		s := dst[j]
		for i, w := range weights {
			s += w * buf[i*stride+j]
		}
		dst[j] = s
	}
}

// Scale multiplies every element of xs by alpha in place.
func Scale(xs []float32, alpha float32) {
	for i := range xs {
		xs[i] *= alpha
	}
}

// Softmax overwrites xs with softmax(xs) using the max-subtraction trick.
// An empty slice is a no-op.
func Softmax(xs []float32) {
	if len(xs) == 0 {
		return
	}
	maxV := xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range xs {
		e := float32(math.Exp(float64(v - maxV)))
		xs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range xs {
		xs[i] *= inv
	}
}

// SoftmaxTemp is Softmax with a temperature divisor applied to the logits
// first. Temperature must be > 0.
func SoftmaxTemp(xs []float32, temp float64) {
	if temp <= 0 {
		panic("tensor: non-positive temperature")
	}
	inv := float32(1 / temp)
	for i := range xs {
		xs[i] *= inv
	}
	Softmax(xs)
}

// RMSNorm returns x normalized by its root-mean-square and scaled by gain,
// as used by LLaMA-family models. eps guards the division.
func RMSNorm(x, gain []float32, eps float32) []float32 {
	out := make([]float32, len(x))
	RMSNormInto(out, x, gain, eps)
	return out
}

// RMSNormInto writes RMSNorm(x, gain) into the caller-owned dst, allocating
// nothing. dst may alias x. It panics on length mismatch.
func RMSNormInto(dst, x, gain []float32, eps float32) {
	if len(x) != len(gain) {
		panic("tensor: rmsnorm length mismatch")
	}
	if len(dst) != len(x) {
		panic("tensor: rmsnorm dst length mismatch")
	}
	var ss float32
	for _, v := range x {
		ss += v * v
	}
	inv := 1 / float32(math.Sqrt(float64(ss/float32(len(x))+eps)))
	for i := range x {
		dst[i] = x[i] * inv * gain[i]
	}
}

// ApplyRoPE rotates the vector x (length must be even) in place by the
// rotary position embedding for the given absolute position, using the
// standard base-10000 frequency schedule over pairs (x[2i], x[2i+1]).
func ApplyRoPE(x []float32, pos int) {
	d := len(x)
	if d%2 != 0 {
		panic("tensor: RoPE requires even head dimension")
	}
	for i := 0; i < d; i += 2 {
		theta := float64(pos) * math.Pow(10000, -float64(i)/float64(d))
		sin, cos := math.Sincos(theta)
		a, b := x[i], x[i+1]
		x[i] = a*float32(cos) - b*float32(sin)
		x[i+1] = a*float32(sin) + b*float32(cos)
	}
}

// RoPEFreqs returns the standard base-10000 rotary frequency schedule for
// an even head dimension d: freqs[p] = 10000^(-2p/d). The schedule depends
// only on d, so callers on the decode hot path precompute it once instead
// of paying a math.Pow per pair per head per layer per step; the table
// entries are the exact float64 values ApplyRoPE computes inline.
func RoPEFreqs(d int) []float64 {
	if d%2 != 0 {
		panic("tensor: RoPE requires even head dimension")
	}
	freqs := make([]float64, d/2)
	for i := 0; i < d; i += 2 {
		freqs[i/2] = math.Pow(10000, -float64(i)/float64(d))
	}
	return freqs
}

// RoPESincosInto fills sin/cos (length len(freqs)) with the rotation
// coefficients for absolute position pos: float32(Sincos(pos·freqs[p])).
// One fill serves every head of a decode step — the angles depend only on
// (pos, head dimension), not on the head or layer.
func RoPESincosInto(sin, cos []float32, freqs []float64, pos int) {
	if len(sin) != len(freqs) || len(cos) != len(freqs) {
		panic("tensor: RoPE table length mismatch")
	}
	for p, f := range freqs {
		s, c := math.Sincos(float64(pos) * f)
		sin[p] = float32(s)
		cos[p] = float32(c)
	}
}

// ApplyRoPECached rotates x in place using precomputed coefficient tables.
// When sin/cos were filled by RoPESincosInto over RoPEFreqs(len(x)) for
// position pos, the result is bit-identical to ApplyRoPE(x, pos): the
// tables hold exactly the float32(cos)/float32(sin) values the inline path
// converts per pair, and the rotation arithmetic is unchanged.
func ApplyRoPECached(x []float32, sin, cos []float32) {
	if len(x) != 2*len(sin) || len(sin) != len(cos) {
		panic("tensor: RoPE table length mismatch")
	}
	for p, s := range sin {
		c := cos[p]
		a, b := x[2*p], x[2*p+1]
		x[2*p] = a*c - b*s
		x[2*p+1] = a*s + b*c
	}
}

// SiLU applies x * sigmoid(x) elementwise in place (LLaMA's activation).
func SiLU(xs []float32) {
	for i, v := range xs {
		xs[i] = v / (1 + float32(math.Exp(-float64(v))))
	}
}

// Argmax returns the index of the largest element, or -1 for an empty slice.
func Argmax(xs []float32) int {
	if len(xs) == 0 {
		return -1
	}
	best, bi := xs[0], 0
	for i, v := range xs[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// TopK returns the indices of the k largest elements in descending order of
// value. If k >= len(xs) all indices are returned.
func TopK(xs []float32, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small in all callers.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// L2Dist returns the Euclidean distance between equal-length vectors.
func L2Dist(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: l2 length mismatch")
	}
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSim returns the cosine similarity of two vectors, or 0 when either
// has zero norm.
func CosineSim(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: cosine length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MeanAbs returns the mean absolute value of xs (0 for empty input), used as
// a magnitude summary when reporting quantisation error.
func MeanAbs(xs []float32) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += math.Abs(float64(v))
	}
	return s / float64(len(xs))
}
