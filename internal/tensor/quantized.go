package tensor

import "math"

// This file holds the fused dequantize-on-stream kernels for quantized KV
// pages. A page stores uniform-quantized codes (8-bit, or 4-bit packed two
// per byte) token-major at the same stride as the fp32 layout, plus one
// (lo, delta) float16 parameter pair per (token, kv-head) slice. The kernels
// dequantize each element inline — x = float32(code)*delta + lo, the exact
// arithmetic of internal/quant's Uniform dequantizer — and feed it straight
// into the Dot/AXPY accumulation, so decode never materializes an fp32 copy
// of the context and results are bit-identical to dequantizing a page into a
// scratch buffer and calling Dot/AXPY on it.

// EncodeFloat16 converts an fp32 value to IEEE 754 binary16 bits with
// round-to-nearest-even, flushing overflow to ±Inf and tiny values to
// (sub)normals or zero.
func EncodeFloat16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32((b>>23)&0xFF) - 127 + 15
	man := b & 0x7FFFFF
	if exp >= 0x1F {
		if (b>>23)&0xFF == 0xFF && man != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // ±Inf (overflow included)
	}
	if exp <= 0 {
		if exp < -10 {
			return sign // underflows to ±0
		}
		// Subnormal: shift the implicit leading bit into the mantissa.
		man |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		m := man >> shift
		if man&half != 0 && (man&(half-1) != 0 || m&1 != 0) {
			m++ // round to nearest, ties to even
		}
		return sign | uint16(m)
	}
	m := man >> 13
	if man&0x1000 != 0 && (man&0xFFF != 0 || m&1 != 0) {
		m++
		if m == 0x400 { // mantissa overflow carries into the exponent
			m = 0
			exp++
			if exp >= 0x1F {
				return sign | 0x7C00
			}
		}
	}
	return sign | uint16(exp)<<10 | uint16(m)
}

// DecodeFloat16 converts IEEE 754 binary16 bits to the exactly-representable
// fp32 value. The normal-number path is kept small enough to inline — the
// fused attention kernels decode two parameters per (token, head) slice, so
// a call here sits on the decode hot path.
func DecodeFloat16(h uint16) float32 {
	if e := h & 0x7C00; e != 0 && e != 0x7C00 {
		return math.Float32frombits(uint32(h&0x8000)<<16 | (uint32(e>>10)+127-15)<<23 | uint32(h&0x3FF)<<13)
	}
	return decodeFloat16Edge(h)
}

// decodeFloat16Edge handles the zero / subnormal / Inf / NaN encodings.
func decodeFloat16Edge(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	man := uint32(h & 0x3FF)
	if exp == 0x1F {
		return math.Float32frombits(sign | 0x7F800000 | man<<13)
	}
	if man == 0 {
		return math.Float32frombits(sign)
	}
	// Subnormal: renormalize into the fp32 format.
	e := uint32(127 - 15 + 1)
	for man&0x400 == 0 {
		man <<= 1
		e--
	}
	return math.Float32frombits(sign | e<<23 | (man&0x3FF)<<13)
}

// DotQuantStrided computes dst[i] = q · dequant(entry i) — the score pass of
// attention over one quantized KV page. Entry i's codes for the requested
// head live at element offset i*stride+off (off = head*len(q)); its (lo,
// delta) float16 pair sits at params[(i*heads+head)*2]. bits must be 8, or 4
// with codes packed two per byte (low nibble first; off and len(q) must then
// be even, which RoPE's even head dimension guarantees). Per-element
// accumulation order matches Dot over a dequantized view, so results are
// bit-identical to the scratch-buffer formulation.
func DotQuantStrided(dst, q []float32, codes []uint8, params []uint16, bits, off, stride, heads, head int) {
	d := len(q)
	switch bits {
	case 8:
		for i := range dst {
			base := i*stride + off
			row := codes[base : base+d : base+d]
			p := (i*heads + head) * 2
			lo := DecodeFloat16(params[p])
			dlt := DecodeFloat16(params[p+1])
			var s float32
			for j, qj := range q {
				s += qj * (float32(row[j])*dlt + lo)
			}
			dst[i] = s
		}
	case 4:
		for i := range dst {
			base := (i*stride + off) >> 1
			row := codes[base : base+d/2 : base+d/2]
			p := (i*heads + head) * 2
			lo := DecodeFloat16(params[p])
			dlt := DecodeFloat16(params[p+1])
			var s float32
			for j := 0; j < d; j += 2 {
				b := row[j>>1]
				s += q[j] * (float32(b&0x0F)*dlt + lo)
				s += q[j+1] * (float32(b>>4)*dlt + lo)
			}
			dst[i] = s
		}
	default:
		panic("tensor: dotquantstrided unsupported bit width")
	}
}

// DotQuantEntry returns q · dequant(entry i) — one entry of DotQuantStrided,
// with identical per-element arithmetic and accumulation order, for kernels
// that fold scores into a streaming recurrence instead of a score vector.
func DotQuantEntry(q []float32, codes []uint8, params []uint16, bits, off, stride, heads, head, i int) float32 {
	d := len(q)
	p := (i*heads + head) * 2
	lo := DecodeFloat16(params[p])
	dlt := DecodeFloat16(params[p+1])
	var s float32
	switch bits {
	case 8:
		base := i*stride + off
		row := codes[base : base+d : base+d]
		for j, qj := range q {
			s += qj * (float32(row[j])*dlt + lo)
		}
	case 4:
		base := (i*stride + off) >> 1
		row := codes[base : base+d/2 : base+d/2]
		for j := 0; j < d; j += 2 {
			b := row[j>>1]
			s += q[j] * (float32(b&0x0F)*dlt + lo)
			s += q[j+1] * (float32(b>>4)*dlt + lo)
		}
	default:
		panic("tensor: dotquantentry unsupported bit width")
	}
	return s
}

// AXPYQuantStrided accumulates dst += Σ_i weights[i] * dequant(entry i) —
// the value-aggregation pass of attention over one quantized KV page, with
// the same layout contract as DotQuantStrided. Entries are processed in
// order and each output element accumulates in entry order, bit-identical to
// the per-token AXPY loop over dequantized views.
func AXPYQuantStrided(dst, weights []float32, codes []uint8, params []uint16, bits, off, stride, heads, head int) {
	d := len(dst)
	switch bits {
	case 8:
		for i, w := range weights {
			base := i*stride + off
			row := codes[base : base+d : base+d]
			p := (i*heads + head) * 2
			lo := DecodeFloat16(params[p])
			dlt := DecodeFloat16(params[p+1])
			for j := range dst {
				dst[j] += w * (float32(row[j])*dlt + lo)
			}
		}
	case 4:
		for i, w := range weights {
			base := (i*stride + off) >> 1
			row := codes[base : base+d/2 : base+d/2]
			p := (i*heads + head) * 2
			lo := DecodeFloat16(params[p])
			dlt := DecodeFloat16(params[p+1])
			for j := 0; j < d; j += 2 {
				b := row[j>>1]
				dst[j] += w * (float32(b&0x0F)*dlt + lo)
				dst[j+1] += w * (float32(b>>4)*dlt + lo)
			}
		}
	default:
		panic("tensor: axpyquantstrided unsupported bit width")
	}
}

// DequantSliceInto writes the dequantized head slice of one entry into dst —
// the scratch-buffer counterpart the fused kernels are pinned against, and
// the primitive the generic (slice-of-slices) cache read path uses.
func DequantSliceInto(dst []float32, codes []uint8, params []uint16, bits, off, stride, heads, head, i int) {
	d := len(dst)
	p := (i*heads + head) * 2
	lo := DecodeFloat16(params[p])
	dlt := DecodeFloat16(params[p+1])
	switch bits {
	case 8:
		base := i*stride + off
		row := codes[base : base+d : base+d]
		for j := range dst {
			dst[j] = float32(row[j])*dlt + lo
		}
	case 4:
		base := (i*stride + off) >> 1
		row := codes[base : base+d/2 : base+d/2]
		for j := 0; j < d; j += 2 {
			b := row[j>>1]
			dst[j] = float32(b&0x0F)*dlt + lo
			dst[j+1] = float32(b>>4)*dlt + lo
		}
	default:
		panic("tensor: dequantsliceinto unsupported bit width")
	}
}
