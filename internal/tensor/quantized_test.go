package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloat16RoundTrip(t *testing.T) {
	// Exactly representable values survive the round trip bit-for-bit.
	exact := []float32{0, 1, -1, 0.5, -2.25, 65504, -65504, 6.103515625e-05, 5.960464477539063e-08}
	for _, v := range exact {
		if got := DecodeFloat16(EncodeFloat16(v)); got != v {
			t.Errorf("round trip %g: got %g", v, got)
		}
	}
	if DecodeFloat16(EncodeFloat16(70000)) != float32(math.Inf(1)) {
		t.Errorf("overflow should saturate to +Inf")
	}
	if DecodeFloat16(EncodeFloat16(1e-9)) != 0 {
		t.Errorf("tiny value should flush to zero")
	}
	if v := DecodeFloat16(EncodeFloat16(float32(math.NaN()))); !math.IsNaN(float64(v)) {
		t.Errorf("NaN should survive as NaN, got %g", v)
	}
	// Round-to-nearest-even at the half-ULP boundary: 2049 sits exactly
	// between representable 2048 and 2050 and must round to the even 2048.
	if got := DecodeFloat16(EncodeFloat16(2049)); got != 2048 {
		t.Errorf("RNE tie: want 2048, got %g", got)
	}
	if got := DecodeFloat16(EncodeFloat16(2051)); got != 2052 {
		t.Errorf("RNE tie: want 2052, got %g", got)
	}
	// General values land within half a binary16 ULP.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := float32(r.NormFloat64())
		got := DecodeFloat16(EncodeFloat16(v))
		if rel := math.Abs(float64(got-v)) / math.Max(math.Abs(float64(v)), 1e-10); rel > 1.0/1024 {
			t.Fatalf("decode(encode(%g)) = %g, relative error %g", v, got, rel)
		}
	}
}

// buildQuantPage fabricates one packed page directly (codes random, params
// random fp16-representable) so kernel tests do not depend on any encoder.
func buildQuantPage(r *rand.Rand, tokens, stride, heads, bits int) (codes []uint8, params []uint16) {
	switch bits {
	case 8:
		codes = make([]uint8, tokens*stride)
		for i := range codes {
			codes[i] = uint8(r.Intn(256))
		}
	case 4:
		codes = make([]uint8, tokens*stride/2)
		for i := range codes {
			codes[i] = uint8(r.Intn(256))
		}
	}
	params = make([]uint16, tokens*heads*2)
	for i := 0; i < len(params); i += 2 {
		params[i] = EncodeFloat16(float32(r.NormFloat64()))
		params[i+1] = EncodeFloat16(float32(math.Abs(r.NormFloat64()) * 0.1))
	}
	return codes, params
}

func TestQuantStridedKernelsMatchScratchBuffer(t *testing.T) {
	const (
		tokens = 16
		heads  = 2
		d      = 16
		stride = heads * d
	)
	r := rand.New(rand.NewSource(11))
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	for _, bits := range []int{8, 4} {
		codes, params := buildQuantPage(r, tokens, stride, heads, bits)
		for head := 0; head < heads; head++ {
			off := head * d
			for _, n := range []int{1, 3, tokens} { // partial pages included
				fast := make([]float32, n)
				DotQuantStrided(fast, q, codes, params, bits, off, stride, heads, head)
				slow := make([]float32, n)
				scratch := make([]float32, d)
				for i := 0; i < n; i++ {
					DequantSliceInto(scratch, codes, params, bits, off, stride, heads, head, i)
					slow[i] = Dot(q, scratch)
				}
				for i := range fast {
					if fast[i] != slow[i] {
						t.Fatalf("bits=%d head=%d n=%d: DotQuantStrided[%d]=%g, scratch path %g",
							bits, head, n, i, fast[i], slow[i])
					}
				}

				w := make([]float32, n)
				for i := range w {
					w[i] = float32(r.Float64())
				}
				fastOut := make([]float32, d)
				slowOut := make([]float32, d)
				for j := 0; j < d; j++ {
					fastOut[j] = float32(j) * 0.25
					slowOut[j] = float32(j) * 0.25
				}
				AXPYQuantStrided(fastOut, w, codes, params, bits, off, stride, heads, head)
				for i := 0; i < n; i++ {
					DequantSliceInto(scratch, codes, params, bits, off, stride, heads, head, i)
					AXPY(slowOut, w[i], scratch)
				}
				for j := range fastOut {
					if fastOut[j] != slowOut[j] {
						t.Fatalf("bits=%d head=%d n=%d: AXPYQuantStrided[%d]=%g, scratch path %g",
							bits, head, n, j, fastOut[j], slowOut[j])
					}
				}
			}
		}
	}
}

func TestQuantStridedKernelsZeroAlloc(t *testing.T) {
	const (
		tokens = 16
		heads  = 2
		d      = 16
		stride = heads * d
	)
	r := rand.New(rand.NewSource(3))
	codes, params := buildQuantPage(r, tokens, stride, heads, 4)
	q := make([]float32, d)
	dst := make([]float32, tokens)
	out := make([]float32, d)
	if n := testing.AllocsPerRun(100, func() {
		DotQuantStrided(dst, q, codes, params, 4, d, stride, heads, 1)
		AXPYQuantStrided(out, dst, codes, params, 4, d, stride, heads, 1)
	}); n != 0 {
		t.Fatalf("quant kernels allocated %.1f per run, want 0", n)
	}
}
