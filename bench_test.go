package rethinkkv

// One benchmark per paper table/figure: each bench regenerates its
// experiment once per iteration, so `go test -bench=. -benchmem` both
// exercises the full pipeline and reports its cost. EXPERIMENTS.md records
// the paper-vs-measured comparison for each.

import (
	"testing"

	"rethinkkv/internal/experiments"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
)

var sink interface{}

func BenchmarkFig1EngineDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1EngineDecode(experiments.ThroughputConfig{}, 2048, []int{1, 2, 4, 8, 16})
	}
}

func BenchmarkFig1StreamSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1StreamSpeedup(experiments.ThroughputConfig{}, 2048, []int{1, 2, 4, 8, 16})
	}
}

func BenchmarkFig1Prefill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1Prefill(experiments.ThroughputConfig{}, []int{1, 4, 8, 16}, []int{1024, 2048, 4096, 8192})
	}
}

func BenchmarkFig1Decode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1Decode(experiments.ThroughputConfig{}, []int{1, 4, 8, 16}, []int{1024, 2048, 4096, 8192})
	}
}

func BenchmarkFig2H800(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig2H800([]int{512, 1024, 2048}, []int{512, 1024, 2048})
	}
}

func BenchmarkFig3AttnTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig3AttentionTime(experiments.ThroughputConfig{}, []int{1024, 2048, 4096})
	}
}

func BenchmarkTable3TP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table3TP(experiments.ThroughputConfig{})
	}
}

func BenchmarkFig8Mistral(b *testing.B) {
	cfg := experiments.ThroughputConfig{HW: gpu.A6000, Model: model.Mistral7B}
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1EngineDecode(cfg, 2048, []int{1, 4, 16})
	}
}

func BenchmarkFig10LLaMA13B(b *testing.B) {
	cfg := experiments.ThroughputConfig{HW: gpu.A6000, Model: model.LLaMA2_13B}
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1Decode(cfg, []int{1, 4, 16}, []int{1024, 4096})
	}
}

func BenchmarkFig11to14TPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.AppendixTPFigures(experiments.ThroughputConfig{}, []int{1, 4, 16})
	}
}

func BenchmarkTable4Verbosity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table4Verbosity(4, 1)
	}
}

func BenchmarkTable5Length(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table5Shift(1000, 1)
	}
}

func BenchmarkFig4LengthDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig4LengthDistribution(500, 1)
	}
}

func BenchmarkFig5E2ECDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig5E2ECDF(300, 1)
	}
}

func BenchmarkFig6Fig7Table7Negatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := experiments.RunNegativeStudy(16, 192, 1)
		sink = st.Fig6Thresholds()
		sink = st.Fig7TaskBreakdown()
		sink = st.Table7NegativeBenchmark()
	}
}

func BenchmarkTable6Predictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table6Predictors(1)
	}
}

func BenchmarkTable8Router(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table8Router(120, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		sink = t
	}
}
