package rethinkkv_test

// One benchmark per paper table/figure: each bench regenerates its
// experiment once per iteration through the public rethinkkv API, so
// `go test -bench=. -benchmem` both exercises the full pipeline and
// reports its cost.

import (
	"context"
	"testing"

	"rethinkkv"
)

var sink interface{}

// mainStudy is the paper's main setting (LLaMA-2-7B on A6000).
func mainStudy(b *testing.B) *rethinkkv.ThroughputStudy {
	b.Helper()
	s, err := rethinkkv.NewThroughputStudy("", "")
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkFig1EngineDecode(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.EngineDecode(2048, []int{1, 2, 4, 8, 16})
	}
}

func BenchmarkFig1StreamSpeedup(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.StreamSpeedup(2048, []int{1, 2, 4, 8, 16})
	}
}

func BenchmarkFig1Prefill(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.PrefillSweep([]int{1, 4, 8, 16}, []int{1024, 2048, 4096, 8192})
	}
}

func BenchmarkFig1Decode(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.DecodeSweep([]int{1, 4, 8, 16}, []int{1024, 2048, 4096, 8192})
	}
}

func BenchmarkFig2H800(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Fig2H800([]int{512, 1024, 2048}, []int{512, 1024, 2048})
	}
}

func BenchmarkFig3AttnTime(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.AttentionTime([]int{1024, 2048, 4096})
	}
}

func BenchmarkTable3TP(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.TensorParallelTable()
	}
}

func BenchmarkFig8Mistral(b *testing.B) {
	s, err := rethinkkv.NewThroughputStudy("mistral-7b", "a6000")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink = s.EngineDecode(2048, []int{1, 4, 16})
	}
}

func BenchmarkFig10LLaMA13B(b *testing.B) {
	s, err := rethinkkv.NewThroughputStudy("llama-2-13b", "a6000")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sink = s.DecodeSweep([]int{1, 4, 16}, []int{1024, 4096})
	}
}

func BenchmarkFig11to14TPSweep(b *testing.B) {
	s := mainStudy(b)
	for i := 0; i < b.N; i++ {
		sink = s.TensorParallelFigures([]int{1, 4, 16})
	}
}

func BenchmarkTable4Verbosity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Table4Verbosity(4, 1)
	}
}

func BenchmarkTable5Length(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Table5Shift(1000, 1)
	}
}

func BenchmarkFig4LengthDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Fig4LengthDistribution(500, 1)
	}
}

func BenchmarkFig5E2ECDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Fig5E2ECDF(300, 1)
	}
}

func BenchmarkFig6Fig7Table7Negatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := rethinkkv.RunNegativeStudy(16, 192, 1)
		sink = st.Fig6Thresholds()
		sink = st.Fig7TaskBreakdown()
		sink = st.Table7NegativeBenchmark()
	}
}

func BenchmarkTable6Predictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = rethinkkv.Table6Predictors(1)
	}
}

func BenchmarkTable8Router(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := rethinkkv.Table8Router(120, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		sink = t
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	p, err := rethinkkv.New(rethinkkv.WithMethod("stream-512"), rethinkkv.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	prompt := make([]int, 128)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % 500
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := p.Run(prompt, 16)
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkPipelineGenerate(b *testing.B) {
	p, err := rethinkkv.New(rethinkkv.WithMethod("stream-512"),
		rethinkkv.WithSeed(1), rethinkkv.WithMaxNewTokens(16))
	if err != nil {
		b.Fatal(err)
	}
	prompt := make([]int, 128)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % 500
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := p.Generate(ctx, prompt)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range ch {
			n++
		}
		sink = n
	}
}
