package rethinkkv

import (
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/sched"
)

// Methods returns every registered compression method name, sorted. The set
// includes the paper's main methods (fp16, kivi-2/4, gear-2/4, h2o-256/512,
// stream-256/512, snapkv-512, tova-512) and the surveyed extensions.
func Methods() []string { return compress.Names() }

// PaperMethods returns the five methods of the paper's main evaluation:
// fp16, kivi-4, gear-4, h2o-512, stream-512.
func PaperMethods() []string {
	set := compress.PaperSet()
	out := make([]string, len(set))
	for i, m := range set {
		out[i] = m.Name
	}
	return out
}

// Engines returns the serving-engine profile names the cost model supports.
func Engines() []string {
	all := engine.Known()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}

// Hardware returns the accelerator descriptor names the cost model supports.
func Hardware() []string {
	all := gpu.All()
	out := make([]string, len(all))
	for i, h := range all {
		out[i] = h.Name
	}
	return out
}

// Models returns the model shape descriptor names, full-size then tiny.
func Models() []string {
	all := model.All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Name
	}
	return out
}

// Router policy names, in the paper's Table 8 order, plus the live-only
// KV-pressure policy the real multi-engine fleet adds.
const (
	RouterBaseline       = "baseline"
	RouterWithThroughput = "w/throughput"
	RouterWithLength     = "w/length"
	RouterWithBoth       = "w/both"
	// RouterKVPressure routes on live KV-cache headroom: backlog plus
	// in-flight prefill debt, with a heavy penalty for engines whose free
	// page budget cannot hold the request's predicted KV demand. Only the
	// real-engine backends populate the live fields it reads; under the
	// simulator it degrades to backlog balancing.
	RouterKVPressure = "kv-pressure"
)

// Routers returns the four routing policies of the paper's Section 5.4,
// selectable by name via Cluster.Router.
func Routers() []string {
	return []string{RouterBaseline, RouterWithThroughput, RouterWithLength, RouterWithBoth}
}

// FleetRouters returns the routing policies selectable via WithRouter on
// the live multi-engine fleet: the paper's four plus kv-pressure.
func FleetRouters() []string {
	return append(Routers(), RouterKVPressure)
}

// KV quantization method names for the live serving plane (WithKVQuant).
// These are orthogonal to the offline compression methods of Methods():
// a Methods() entry changes what the accuracy/cost study retains, while a
// KV quant method changes how the real engines' paged caches store every
// retained token.
const (
	// KVQuantFP32 stores full-precision fp32 pages (the default).
	KVQuantFP32 = "fp32"
	// KVQuantInt8 stores 8-bit uniform codes with float16 scale pairs,
	// ~3–4× the resident pages per byte budget.
	KVQuantInt8 = "int8"
	// KVQuantInt4 stores 4-bit codes packed two per byte, ~5–8× the
	// resident pages per byte budget.
	KVQuantInt4 = "int4"
)

// KVQuantMethods returns the KV page precisions selectable via WithKVQuant
// on the real serving backends.
func KVQuantMethods() []string {
	return []string{KVQuantFP32, KVQuantInt8, KVQuantInt4}
}

// Scheduling policy names for the continuous-batching server
// (WithSchedPolicy).
const (
	// SchedFCFS admits in arrival order and preempts the newest arrival.
	SchedFCFS = sched.PolicyFCFS
	// SchedSJF is shortest-job-first on the predicted response length,
	// preempting the longest predicted remainder.
	SchedSJF = sched.PolicySJF
)

// SchedPolicies returns the continuous-batching scheduling policies
// selectable via WithSchedPolicy.
func SchedPolicies() []string { return sched.Policies() }
