package rethinkkv

import (
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/experiments"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/predictor"
)

// Figure is one line chart's worth of experiment data (x values plus named
// series), with a plain-text Format renderer.
type Figure = experiments.Figure

// Table is one paper table (title, columns, labelled rows), with a
// plain-text Format renderer.
type Table = experiments.Table

// NegativeStudy bundles the shared negative-sample evaluation pass behind
// Figures 6-7 and Table 7.
type NegativeStudy = experiments.NegativeStudy

// Advantage is the throughput-analysis advantage map of a method vs FP16
// over a (batch, length) grid.
type Advantage = predictor.Advantage

// FormatAll renders a slice of figures one after another.
func FormatAll(figs []Figure) string { return experiments.FormatAll(figs) }

// ThroughputStudy regenerates the paper's throughput experiments
// (Figures 1-3, Table 3, appendix TP figures) for one hardware/model pair.
type ThroughputStudy struct {
	cfg experiments.ThroughputConfig
}

// NewThroughputStudy selects the hardware and model under test. Empty names
// select the paper's main setting (LLaMA-2-7B on A6000).
func NewThroughputStudy(modelName, hwName string) (*ThroughputStudy, error) {
	var cfg experiments.ThroughputConfig
	if modelName != "" {
		mc, err := resolveModel(modelName)
		if err != nil {
			return nil, err
		}
		cfg.Model = mc
	}
	if hwName != "" {
		hw, err := resolveHardware(hwName)
		if err != nil {
			return nil, err
		}
		cfg.HW = hw
	}
	return &ThroughputStudy{cfg: cfg}, nil
}

// EngineDecode reproduces Figure 1 (a-b): FP16 decode throughput across
// engines, over batch sizes at a fixed KV length.
func (s *ThroughputStudy) EngineDecode(kvLen int, batches []int) Figure {
	return experiments.Fig1EngineDecode(s.cfg, kvLen, batches)
}

// StreamSpeedup reproduces Figure 1 (c-d): StreamingLLM's speedup by engine.
func (s *ThroughputStudy) StreamSpeedup(kvLen int, batches []int) Figure {
	return experiments.Fig1StreamSpeedup(s.cfg, kvLen, batches)
}

// PrefillSweep reproduces Figure 1 (e-h): per-method prefill throughput.
func (s *ThroughputStudy) PrefillSweep(batches, promptLens []int) []Figure {
	return experiments.Fig1Prefill(s.cfg, batches, promptLens)
}

// DecodeSweep reproduces Figure 1 (i-l): per-method decode throughput.
func (s *ThroughputStudy) DecodeSweep(batches, kvLens []int) []Figure {
	return experiments.Fig1Decode(s.cfg, batches, kvLens)
}

// AttentionTime reproduces Figure 3: attention-layer time by method.
func (s *ThroughputStudy) AttentionTime(lens []int) []Figure {
	return experiments.Fig3AttentionTime(s.cfg, lens)
}

// TensorParallelTable reproduces Table 3: compression speedups across TP
// degrees.
func (s *ThroughputStudy) TensorParallelTable() Table {
	return experiments.Table3TP(s.cfg)
}

// TensorParallelFigures reproduces the appendix TP sweeps (Figures 11-14).
func (s *ThroughputStudy) TensorParallelFigures(batches []int) []Figure {
	return experiments.AppendixTPFigures(s.cfg, batches)
}

// Fig2H800 reproduces Figure 2: LLaMA-2-70B on H800 across methods.
func Fig2H800(promptLens, kvLens []int) []Figure {
	return experiments.Fig2H800(promptLens, kvLens)
}

// Fig8Mistral reproduces appendix Figure 8: Mistral-7B prefill throughput.
func Fig8Mistral(batches, promptLens []int) []Figure {
	return experiments.Fig8Mistral(batches, promptLens)
}

// Fig9SnapKV reproduces appendix Figure 9: SnapKV/TOVA decode throughput.
func Fig9SnapKV(batches, lens []int) []Figure {
	return experiments.Fig9SnapKV(batches, lens)
}

// Fig10LLaMA13B reproduces appendix Figure 10: LLaMA-2-13B decode sweeps.
func Fig10LLaMA13B(batches, lens []int) []Figure {
	return experiments.Fig10LLaMA13B(batches, lens)
}

// Table4Verbosity reproduces Table 4: semantic score and length increase on
// verbose requests, from real tiny-model generations.
func Table4Verbosity(nSamples int, seed uint64) Table {
	return experiments.Table4Verbosity(nSamples, seed)
}

// Table5Shift reproduces Table 5: ≥50% response-length-shift ratios.
func Table5Shift(n int, seed uint64) Table {
	return experiments.Table5Shift(n, seed)
}

// Fig4LengthDistribution reproduces Figure 4: response length-difference
// distributions per method.
func Fig4LengthDistribution(n int, seed uint64) []Figure {
	return experiments.Fig4LengthDistribution(n, seed)
}

// Fig5E2ECDF reproduces Figure 5: the end-to-end latency CDF per method.
func Fig5E2ECDF(n int, seed uint64) Figure {
	return experiments.Fig5E2ECDF(n, seed)
}

// Table9MistralShift reproduces appendix Table 9: length shifts on Mistral.
func Table9MistralShift(n int, seed uint64) Table {
	return experiments.Table9MistralShift(n, seed)
}

// Fig15MistralLengthDistribution reproduces appendix Figure 15.
func Fig15MistralLengthDistribution(n int, seed uint64) []Figure {
	return experiments.Fig15MistralLengthDistribution(n, seed)
}

// Fig16MistralE2E reproduces appendix Figure 16: Mistral E2E latency CDF.
func Fig16MistralE2E(n int, seed uint64) Figure {
	return experiments.Fig16MistralE2E(n, seed)
}

// Table6Predictors reproduces Table 6: throughput and length predictor
// accuracy per method.
func Table6Predictors(seed uint64) Table {
	return experiments.Table6Predictors(seed)
}

// Table8Router reproduces Table 8: average end-to-end latency of the four
// routing policies on a Poisson trace of n requests at rps.
func Table8Router(n int, rps float64, seed uint64) (Table, error) {
	return experiments.Table8Router(n, rps, seed)
}

// RunNegativeStudy evaluates n LongBench-like samples (prompt scale
// promptLen) under the negative-analysis method set, on the LLaMA-family
// tiny model.
func RunNegativeStudy(n, promptLen int, seed uint64) *NegativeStudy {
	return experiments.RunNegativeStudy(n, promptLen, seed)
}

// MistralNegativeStudy is RunNegativeStudy on the Mistral-family seed
// (appendix Figures 17-18, Table 11).
func MistralNegativeStudy(n, promptLen int, seed uint64) *NegativeStudy {
	return experiments.MistralNegativeStudy(n, promptLen, seed)
}

// ComputeAdvantage maps where a method beats FP16 on the paper's main
// setting (LLaMA-2-7B, A6000, LMDeploy) over a (batch, length) grid.
func ComputeAdvantage(method string, batches, lengths []int) (Advantage, error) {
	m, err := resolveMethod(method)
	if err != nil {
		return Advantage{}, err
	}
	fp := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	me := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, m, 1)
	return predictor.ComputeAdvantage(fp, me, m.Name, batches, lengths), nil
}
