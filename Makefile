GO ?= go

.PHONY: ci fmt vet build test race-sched fleet-smoke chaos-smoke bench bench-smoke bench-serve

ci: fmt vet build test race-sched fleet-smoke chaos-smoke bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The continuous-batching scheduler, the multi-engine fleet pool over it
# (router placement, migration hook, per-flight forwarder goroutines), and
# the fused batched step plane underneath (sched -> core.StepMixedInto ->
# model.ForwardMixedInto, whose sharded GEMMs and chunk attention spawn
# goroutines at GOMAXPROCS>1) are the concurrency-heavy packages; run them —
# including the interleaved prefill+decode tests — under the race detector
# in CI. internal/quant and internal/kvcache ride along since quantized
# pages (append-time encode, fused dequant reads, CoW clones) now sit on
# the same concurrent decode plane, and internal/attention because the
# sparse page-selection kernels (criticality scoring over the key summaries)
# run inside the sharded decode step. internal/faults joins for the
# fault-injection hooks (panic isolation, submit storms) exercised by the
# failover and deadline-shedding tests in sched and fleet.
race-sched:
	$(GO) test -race ./internal/sched ./internal/fleet ./internal/core ./internal/model ./internal/quant ./internal/kvcache ./internal/attention ./internal/faults

# fleet-smoke runs a tiny end-to-end multi-engine serve through servebench:
# 2 engines, baseline router, no rate sweep or long-prompt scenario.
fleet-smoke:
	$(GO) run ./cmd/servebench -rates "" -longprompt 0 -fleet 2 -routers baseline -fleetreqs 6 -maxnew 8 > /dev/null

# chaos-smoke runs one seeded engine-failure scenario end-to-end through
# servebench: a 3-engine fleet loses 1 engine to an injected mid-decode
# panic, failover replays its in-flight requests on the survivors, and the
# run asserts-by-construction that every stream completes (completed_frac)
# and stays token-identical to the no-fault run (tokens_match_no_fault in
# the chaos_scenario JSON).
chaos-smoke:
	$(GO) run ./cmd/servebench -rates "" -longprompt 0 -chaos 3 -chaoskills 0,1 -chaosreqs 6 -chaosmaxnew 24 > /dev/null

BENCH_PKGS = . ./internal/model ./internal/attention

# bench-smoke compiles and single-steps every benchmark (including the
# quantized-decode cases BenchmarkDecodeSteadyQuant / the PagedStridedQuant
# benches, and the sparse-attention cases BenchmarkDecodeSteadySparse /
# BenchmarkPagedStridedSparse / BenchmarkQuestSummaries) and re-pins the
# dequantize-on-stream and sparse-selection decode paths — plus the
# budget-packed mixed prefill+decode pass (multiple prompts' chunks in one
# fused step) — at 0 allocs/step.
bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x $(BENCH_PKGS)
	$(GO) test -run 'TestQuantDecodeAllocs|TestPagedStridedQuantZeroAlloc|TestQuantStridedKernelsZeroAlloc|TestSparseDecodeAllocs|TestSparseAttentionZeroAlloc|TestForwardMixedPackedAllocFree|TestStepMixedPackedAllocFree' ./internal/model ./internal/attention ./internal/tensor ./internal/core

# bench runs the decode and attention hot-path benchmarks with allocation
# reporting (compare BenchmarkDecodeSteady / BenchmarkDecodeSteadyBatched /
# BenchmarkPrefillChunked256 against BENCH_decode.json) and the serving
# benchmark (compare against BENCH_serve.json; regenerate with
# `make bench-serve`), including the long-prompt chunked-prefill scenario
# (one 512-token prompt arriving over a full decode batch; see
# long_prompt_scenario in BENCH_serve.json) and its k-prompt burst
# sub-scenario (4 simultaneous 512-token arrivals swept over per-iteration
# token budgets; see k_prompt_burst). Decode benches run at -cpu 1,4
# so both the serial fused step and the row/lane-sharded parallel step are
# exercised; servebench runs at GOMAXPROCS>1 for the same reason (on a
# single-core machine the sharded paths still execute, they just
# timeshare).
bench:
	$(GO) test -run XXX -bench=. -benchmem -cpu 1,4 $(BENCH_PKGS)
	GOMAXPROCS=4 $(GO) run ./cmd/servebench -fleet 4 -kvquant fp32,int8,int4 -sparse 8,32 -chaos 4

# bench-serve records the baseline at the machine's native GOMAXPROCS (the
# numbers in BENCH_serve.json state the setting; `make bench` additionally
# exercises the GOMAXPROCS>1 paths regardless of machine size). -fleet 4
# adds the fleet scenario: a 4-engine fleet A/B'd against one server per
# router policy on a decode-heavy page-pressure workload (fleet_scenario in
# the JSON; its own -fleetmaxnew 96 budget makes KV growth, not arrival
# order, the binding constraint). -kvquant adds the KV page precision A/B
# (kv_quant_scenario): fp32 vs int8 vs int4 pages under one byte budget,
# with SLO goodput and per-method accuracy deltas. -sparse adds the
# long-context sparse decode A/B (sparse_scenario): a 3072-token prompt
# decoded under full attention vs Quest-style topK page selection, with
# decode tok/s, attention-mass recall and task-score deltas per budget.
# -chaos 4 adds the goodput-under-failure curve (chaos_scenario): seeded
# mid-decode panics kill 0/1/2 of 4 engines, failover keeps every stream
# token-identical to the no-fault run, and relative goodput is compared
# against the surviving capacity fraction. The long-prompt scenario's
# k_prompt_burst sub-scenario (on by default) sweeps WithTokenBudget over a
# 4-prompt arrival burst: aggregate TTFT vs the single-chunk baseline.
bench-serve:
	$(GO) run ./cmd/servebench -fleet 4 -kvquant fp32,int8,int4 -sparse 8,32 -chaos 4 -out BENCH_serve.json
