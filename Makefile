GO ?= go

.PHONY: ci fmt vet build test bench

ci: fmt vet build test bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x .

bench:
	$(GO) test -run XXX -bench=. -benchmem .
