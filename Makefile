GO ?= go

.PHONY: ci fmt vet build test race-sched bench bench-smoke bench-serve

ci: fmt vet build test race-sched bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The continuous-batching scheduler is the one concurrency-heavy package;
# run it (and the step plane under it) under the race detector in CI.
race-sched:
	$(GO) test -race ./internal/sched ./internal/core

BENCH_PKGS = . ./internal/model ./internal/attention

bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x $(BENCH_PKGS)

# bench runs the decode and attention hot-path benchmarks with allocation
# reporting (compare BenchmarkDecodeSteady against BENCH_decode.json) and
# the serving benchmark (compare against BENCH_serve.json; regenerate the
# baseline with `go run ./cmd/servebench -out BENCH_serve.json`).
bench:
	$(GO) test -run XXX -bench=. -benchmem $(BENCH_PKGS)
	$(GO) run ./cmd/servebench

bench-serve:
	$(GO) run ./cmd/servebench -out BENCH_serve.json
