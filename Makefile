GO ?= go

.PHONY: ci fmt vet build test bench

ci: fmt vet build test bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

BENCH_PKGS = . ./internal/model ./internal/attention

bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x $(BENCH_PKGS)

# bench runs the decode and attention hot-path benchmarks with allocation
# reporting; compare BenchmarkDecodeSteady against BENCH_decode.json.
bench:
	$(GO) test -run XXX -bench=. -benchmem $(BENCH_PKGS)
