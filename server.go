package rethinkkv

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rethinkkv/internal/faults"
	"rethinkkv/internal/fleet"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/stats"
)

// translateServeErr maps internal engine sentinels onto the public ones so
// callers test against rethinkkv.Err* and messages stay "rethinkkv:"-
// prefixed at the facade boundary.
func translateServeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, kvcache.ErrOutOfPages):
		return fmt.Errorf("%w (%v)", ErrOutOfPages, err)
	case errors.Is(err, sched.ErrClosed):
		return ErrServerClosed
	case errors.Is(err, fleet.ErrBadRoute):
		return fmt.Errorf("%w (%v)", ErrBadRoute, err)
	case errors.Is(err, sched.ErrOverloaded):
		return fmt.Errorf("%w (%v)", ErrOverloaded, err)
	case errors.Is(err, sched.ErrDeadlineExceeded):
		return fmt.Errorf("%w (%v)", ErrDeadlineExceeded, err)
	case errors.Is(err, sched.ErrEngineFailed):
		return fmt.Errorf("%w (%v)", ErrEngineFailed, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return err
	default:
		return fmt.Errorf("rethinkkv: %w", err)
	}
}

// ServeRequest is one request to the continuous-batching server.
type ServeRequest struct {
	// Prompt is the token sequence to prefill (required, in-vocabulary).
	Prompt []int
	// MaxNew caps the decoded tokens; 0 uses the server's
	// WithMaxNewTokens default.
	MaxNew int
	// Predicted is the predicted response length the sjf-predicted policy
	// orders by; 0 falls back to MaxNew.
	Predicted int
	// Deadline, if positive, is the request's TTFT budget measured from
	// this Submit call: a request still queued — no token streamed — when
	// it expires is shed, its stream closing with a final token whose Err
	// wraps ErrDeadlineExceeded. 0 uses the WithAdmissionTimeout default
	// (none if unset). Once a request streams its first token it is never
	// shed, however late it finishes.
	Deadline time.Duration
}

// ServerStats is a snapshot of the scheduler's lifetime counters.
type ServerStats struct {
	// Steps counts scheduling iterations (every prefill-complete request
	// advances one token per step; an iteration may also, or only, carry
	// a prefill chunk).
	Steps int
	// Admitted counts admissions, including re-admissions after
	// preemption.
	Admitted int
	// Preemptions counts evict-and-recompute events under KV pressure.
	Preemptions int
	// Completed and Cancelled count retired requests.
	Completed, Cancelled int
	// Shed counts requests dropped from the admission queue because their
	// TTFT deadline (ServeRequest.Deadline / WithAdmissionTimeout) passed
	// before decode started — deliberate load shedding, not failure.
	Shed int
	// PeakRunning is the largest concurrent decode batch formed.
	PeakRunning int
	// PeakKVPages is the most KV pages simultaneously in use.
	PeakKVPages int
	// PrefillChunks counts prompt chunks advanced through the fused plane
	// (see WithPrefillChunk), one per chunk — a budget-packed iteration
	// carrying chunks from k prompts counts k; MixedSteps counts
	// iterations that carried at least one decode lane and at least one
	// prefill chunk in one fused weight pass; PrefillPreempted counts
	// preemption victims caught mid-prefill.
	PrefillChunks    int
	MixedSteps       int
	PrefillPreempted int
	// PackedChunks counts prefill chunks that shared their fused pass with
	// at least one other prompt's chunk — the stall-free packing
	// WithTokenBudget enables; always 0 in single-chunk mode. BudgetTokens
	// totals the tokens every scheduling iteration carried (decode lanes +
	// prefill chunk tokens), the utilisation numerator for the budget.
	PackedChunks int
	BudgetTokens int
	// PrefixHits counts admissions served from the WithSharedPrefix
	// cache; PrefixTokensSaved totals the prefill tokens they skipped.
	PrefixHits        int
	PrefixTokensSaved int
	// MigratedOut counts preemption victims handed to another engine
	// instead of re-queued locally. Always 0 on a standalone Server; a
	// Fleet reports it per engine (see FleetStats).
	MigratedOut int
	// SparsePagesSelected / SparsePagesTotal account WithSparseAttention's
	// page selection across every (layer, head) decode attention:
	// selected/total is the fraction of resident KV pages decode actually
	// read. Both stay 0 under dense serving (or when sparsity never
	// engaged because contexts stayed at or under topK pages).
	SparsePagesSelected int64
	SparsePagesTotal    int64
}

// serverStatsFrom converts the internal scheduler counters to their public
// form — shared by Server.Stats and Fleet.Stats so the two surfaces cannot
// drift.
func serverStatsFrom(st sched.Stats) ServerStats {
	return ServerStats{
		Steps:               st.Steps,
		Admitted:            st.Admitted,
		Preemptions:         st.Preemptions,
		Completed:           st.Completed,
		Cancelled:           st.Cancelled,
		Shed:                st.Shed,
		PeakRunning:         st.PeakRunning,
		PeakKVPages:         st.PeakPages,
		PrefillChunks:       st.PrefillChunks,
		MixedSteps:          st.MixedSteps,
		PrefillPreempted:    st.PrefillPreempted,
		PackedChunks:        st.PackedChunks,
		BudgetTokens:        st.BudgetTokens,
		PrefixHits:          st.PrefixHits,
		PrefixTokensSaved:   st.PrefixTokensSaved,
		MigratedOut:         st.MigratedOut,
		SparsePagesSelected: st.SparsePagesSelected,
		SparsePagesTotal:    st.SparsePagesTotal,
	}
}

// Server is a continuous-batching serving engine over the real tiny-model
// decode loop and a paged KV cache: requests join and leave the running
// batch at every decode iteration, stream their tokens as produced, and
// are preempted and recomputed when the KV page budget (WithKVPages) runs
// out. It is the live-traffic counterpart of the simulated Cluster — both
// report the same Outcome metrics (TTFT, TBOT, E2E), the server in
// wall-clock seconds.
type Server struct {
	cfg    config
	eng    *sched.Engine
	nextID atomic.Int64
}

// NewServer starts a continuous-batching server. Options: WithSeed,
// WithMaxNewTokens, WithMaxBatch, WithKVPages, WithPageTokens,
// WithPrefillChunk, WithSchedPolicy, WithKVQuant. Unknown policies return
// ErrUnknownPolicy; unknown KV quant methods return ErrUnknownQuantMethod.
// The server decodes full-precision paged KV by default; WithKVQuant
// switches the pages to int8/int4 codes streamed through fused
// dequantize-on-read kernels. Close it with Close when done.
func NewServer(opts ...Option) (*Server, error) {
	cfg := buildConfig(opts)
	switch {
	case cfg.maxNew <= 0:
		return nil, fmt.Errorf("%w: max new tokens must be positive, got %d", ErrInvalidOption, cfg.maxNew)
	case cfg.maxBatch <= 0:
		return nil, fmt.Errorf("%w: max batch must be positive, got %d", ErrInvalidOption, cfg.maxBatch)
	case cfg.pageTokens <= 0:
		return nil, fmt.Errorf("%w: page tokens must be positive, got %d", ErrInvalidOption, cfg.pageTokens)
	case cfg.kvPages < 0:
		return nil, fmt.Errorf("%w: negative KV page budget %d", ErrInvalidOption, cfg.kvPages)
	case cfg.prefillChunk <= 0:
		return nil, fmt.Errorf("%w: prefill chunk must be positive, got %d", ErrInvalidOption, cfg.prefillChunk)
	case cfg.tokenBudget < 0:
		return nil, fmt.Errorf("%w: negative token budget %d", ErrInvalidOption, cfg.tokenBudget)
	case cfg.sparseTopK < 0:
		return nil, fmt.Errorf("%w: negative sparse attention topK %d", ErrInvalidOption, cfg.sparseTopK)
	case cfg.maxQueue < 0:
		return nil, fmt.Errorf("%w: negative admission queue bound %d", ErrInvalidOption, cfg.maxQueue)
	case cfg.admissionTimeout < 0:
		return nil, fmt.Errorf("%w: negative admission timeout %v", ErrInvalidOption, cfg.admissionTimeout)
	}
	if cfg.schedPol != SchedFCFS && cfg.schedPol != SchedSJF {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.schedPol)
	}
	quantBits, err := resolveKVQuant(cfg.kvQuant)
	if err != nil {
		return nil, err
	}
	if len(cfg.sharedPrefix) > 0 {
		if err := validatePrompt(cfg.sharedPrefix, model.Tiny().Vocab); err != nil {
			return nil, fmt.Errorf("%w: shared prefix: %w", ErrInvalidOption, err)
		}
	}
	m := model.New(model.Tiny(), cfg.seed)
	m.SetSparseTopK(cfg.sparseTopK)
	scfg := sched.Config{
		MaxBatch:         cfg.maxBatch,
		PageTokens:       cfg.pageTokens,
		KVPages:          cfg.kvPages,
		MaxNew:           cfg.maxNew,
		PrefillChunk:     cfg.prefillChunk,
		TokenBudget:      cfg.tokenBudget,
		Policy:           cfg.schedPol,
		KVQuantBits:      quantBits,
		SharedPrefix:     cfg.sharedPrefix,
		MaxQueue:         cfg.maxQueue,
		AdmissionTimeout: cfg.admissionTimeout.Seconds(),
	}
	if cfg.faults != nil {
		// A standalone server is engine 0 of its own one-replica fleet.
		inj := buildInjector(cfg.faults)
		scfg.StepHook = inj.StepHook(0)
		scfg.SubmitHook = inj.SubmitHook(0)
	}
	eng, err := sched.New(m, scfg)
	if err != nil {
		return nil, translateServeErr(err)
	}
	return &Server{cfg: cfg, eng: eng}, nil
}

// buildInjector materialises a FaultPlan into the internal deterministic
// injector the engines consume.
func buildInjector(plan *FaultPlan) *faults.Injector {
	inj := faults.New(plan.Seed)
	for gpu, step := range plan.StepPanics {
		inj.PanicAt(gpu, step)
	}
	for gpu, n := range plan.SubmitStorms {
		inj.SubmitStorm(gpu, n)
	}
	for gpu, d := range plan.StepDelays {
		inj.Delay(gpu, d)
	}
	return inj
}

// Vocab returns the served model's vocabulary size.
func (s *Server) Vocab() int { return model.Tiny().Vocab }

// Submit enqueues a request and returns its token stream. The channel is
// buffered to the request's full budget (the server never blocks on a slow
// consumer) and closes when the request completes, ctx is cancelled, or
// the server shuts down. Submission fails fast with ErrOutOfPages when the
// request cannot fit the page budget even running alone, with
// ErrOverloaded when the WithMaxQueue admission bound is full, and with
// ErrServerClosed after Close. A request that is admitted but shed past
// its TTFT deadline, or orphaned by an engine failure, ends its stream
// with a final token whose Err wraps ErrDeadlineExceeded or
// ErrEngineFailed; tokens with Err == nil are ordinary output.
func (s *Server) Submit(ctx context.Context, req ServeRequest) (<-chan Token, error) {
	if err := validatePrompt(req.Prompt, s.Vocab()); err != nil {
		return nil, err
	}
	var dl float64
	if req.Deadline > 0 {
		dl = s.eng.Now() + req.Deadline.Seconds()
	}
	maxNew := req.MaxNew
	if maxNew <= 0 {
		maxNew = s.cfg.maxNew
	}
	ch, err := s.eng.Submit(ctx, sched.Request{
		ID:        int(s.nextID.Add(1)) - 1, // submission order, 0-based
		Prompt:    req.Prompt,
		MaxNew:    req.MaxNew,
		Predicted: req.Predicted,
		Arrival:   -1, // stamp at submit time
		Deadline:  dl,
	})
	if err != nil {
		return nil, translateServeErr(err)
	}
	return translateStream(ch, maxNew+1), nil
}

// translateStream forwards an engine stream, rewriting any terminal error
// token's Err onto the public sentinels (translateServeErr) so stream
// consumers can errors.Is against rethinkkv.Err*. The buffer matches the
// engine-side stream (token budget plus one error slot), so forwarding
// never blocks on a slow consumer any more than the engine itself would.
func translateStream(ch <-chan sched.Token, buf int) <-chan Token {
	out := make(chan Token, buf)
	go func() {
		defer close(out)
		for tok := range ch {
			if tok.Err != nil {
				tok.Err = translateServeErr(tok.Err)
			}
			out <- tok
		}
	}()
	return out
}

// Drain blocks until every request submitted so far has retired, or ctx is
// cancelled. Submit keeps working during a drain; callers that want a
// quiescent server stop submitting first. A drain cut short by Close
// reports ErrServerClosed.
func (s *Server) Drain(ctx context.Context) error {
	return translateServeErr(s.eng.Drain(ctx))
}

// Close shuts the server down; in-flight streams are closed without
// completing. Close is idempotent.
func (s *Server) Close() { s.eng.Close() }

// Outcomes returns the per-request serving records of every retired
// request so far — the same Outcome type (and TTFT/TBOT/E2E accessors)
// the simulated Cluster produces, measured in wall-clock seconds.
func (s *Server) Outcomes() []Outcome { return s.eng.Outcomes() }

// Stats returns a snapshot of the scheduler counters.
func (s *Server) Stats() ServerStats {
	return serverStatsFrom(s.eng.Stats())
}

// Failed reports the server's terminal failure (wrapping ErrEngineFailed)
// or nil while it is healthy. A failed server rejects new Submits and
// reports the same error from Drain; its live streams ended with an error
// token when the failure struck.
func (s *Server) Failed() error { return translateServeErr(s.eng.Failed()) }

// PageBudget returns the engine's effective KV page budget: WithKVPages(n)
// as-is for full-precision pages, or the larger page count the same byte
// budget holds under WithKVQuant. 0 means unbounded.
func (s *Server) PageBudget() int { return s.eng.View().PageBudget }

// MeanTTFT returns the average time-to-first-token of outcomes, seconds.
func MeanTTFT(outcomes []Outcome) float64 {
	return stats.Mean(serving.TTFTs(outcomes))
}

// TokensPerSec returns aggregate generated tokens per second over the
// run's makespan — the serving-throughput headline number.
func TokensPerSec(outcomes []Outcome) float64 {
	return serving.TokensPerSec(outcomes)
}

// Makespan returns the span from the earliest arrival to the latest
// finish — the denominator of TokensPerSec.
func Makespan(outcomes []Outcome) float64 { return serving.Makespan(outcomes) }

// TotalTokens sums the generated (response) tokens across outcomes.
func TotalTokens(outcomes []Outcome) int { return serving.TotalTokens(outcomes) }

// TTFTs extracts per-request time-to-first-token latencies.
func TTFTs(outcomes []Outcome) []float64 { return serving.TTFTs(outcomes) }

// Percentile returns the p-th percentile (p in [0,100]) of xs with linear
// interpolation — a convenience over TTFTs/E2Es for latency reporting.
func Percentile(xs []float64, p float64) float64 { return stats.Percentile(xs, p) }

// SLO names the per-request latency deadlines goodput is graded on: time to
// first token and mean time between output tokens, in seconds. A zero
// deadline leaves that metric unconstrained.
type SLO = serving.SLO

// SLOGoodput returns the fraction of generated tokens belonging to requests
// that met both SLO deadlines — goodput as a share of raw throughput,
// token-weighted so long blown-deadline responses count at full cost.
func SLOGoodput(outcomes []Outcome, slo SLO) float64 {
	return serving.SLOGoodput(outcomes, slo)
}
