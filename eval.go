package rethinkkv

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/model"
	"rethinkkv/internal/workload"
)

// Sample is one LongBench-like evaluation sample: a tokenised prompt with
// critical spans the answer depends on.
type Sample = workload.Sample

// Span is a half-open token range [Start, End) within a prompt.
type Span = workload.Span

// TaskType is a LongBench-like task category.
type TaskType = workload.TaskType

// Task categories of the LongBench-like suite.
const (
	Summarization = workload.Summarization
	SingleDocQA   = workload.SingleDocQA
	MultiDocQA    = workload.MultiDocQA
	CodeTask      = workload.Code
	FewShot       = workload.FewShot
	Synthetic     = workload.Synthetic
)

// Reference is the FP16 baseline run of one sample, reused across methods.
type Reference = accuracy.Reference

// EvalResult is the per-sample, per-method accuracy outcome (retention,
// fidelity, agreement, task score).
type EvalResult = accuracy.Result

// NegativeSet is the output of the paper's Algorithm 1: samples benign
// under the baseline that degrade beyond a threshold under every method in
// the set.
type NegativeSet = accuracy.NegativeSet

// Evaluator scores samples under compression methods by running the tiny
// transformer for real — quantisation and eviction act on genuine tensors.
type Evaluator struct {
	ev    *accuracy.Evaluator
	vocab int
}

// NewEvaluator builds an accuracy evaluator. Options: WithSeed (model
// weights), WithContSteps (continuation length compared between reference
// and compressed runs).
func NewEvaluator(opts ...Option) (*Evaluator, error) {
	cfg := buildConfig(opts)
	tiny := model.New(model.Tiny(), cfg.seed)
	return &Evaluator{
		ev:    accuracy.NewEvaluator(tiny, accuracy.Config{ContSteps: cfg.contSteps}),
		vocab: model.Tiny().Vocab,
	}, nil
}

// LongBenchSamples draws a deterministic LongBench-like task suite of n
// samples at the given prompt scale.
func (e *Evaluator) LongBenchSamples(n, promptLen int, seed uint64) []Sample {
	return workload.SampleLongBench(workload.DefaultLongBench(n, promptLen, e.vocab), seed)
}

// Baseline executes the FP16 reference run for a sample.
func (e *Evaluator) Baseline(s Sample) *Reference { return e.ev.RunBaseline(s) }

// Evaluate scores one method against a reference run. Besides the offline
// compression methods of Methods(), the live serving plane's KV page
// precisions KVQuantInt8 and KVQuantInt4 (WithKVQuant) are accepted, so the
// accuracy cost of quantized serving is measured with the same retention /
// fidelity / agreement vocabulary. (KVQuantFP32 is not: full-precision
// pages are the reference itself — its deltas are identically zero.)
// Unknown method names return ErrUnknownMethod.
func (e *Evaluator) Evaluate(ref *Reference, method string) (EvalResult, error) {
	if method != KVQuantInt8 && method != KVQuantInt4 {
		if _, err := resolveMethod(method); err != nil {
			return EvalResult{}, err
		}
	}
	return e.ev.Evaluate(ref, method), nil
}

// SparseEvalResult is EvalResult plus the sparse decode plane's own
// diagnostics: attention-mass recall of the selected pages and the
// page-selection tallies.
type SparseEvalResult = accuracy.SparseResult

// EvaluateSparse scores the live sparse decode plane (WithSparseAttention)
// at the given per-head page budget: dense prefill — exactly what the
// serving engines run — then a greedy continuation reading only the topK
// most critical KV pages per attention. The cache itself stays lossless, so
// retention and fidelity are 1 and the whole accuracy cost appears in
// continuation agreement and task score; Recall reports how much true
// attention mass the selected pages carried. topK at or above the resident
// page count reproduces the dense baseline exactly.
func (e *Evaluator) EvaluateSparse(ref *Reference, topK int) (SparseEvalResult, error) {
	if topK <= 0 {
		return SparseEvalResult{}, fmt.Errorf("%w: sparse attention topK must be positive, got %d", ErrInvalidOption, topK)
	}
	return e.ev.EvaluateSparse(ref, topK, 0), nil
}

// CollectNegatives implements the paper's Algorithm 1: the samples benign
// under the baseline that degrade beyond threshold theta under every listed
// method. baseline[i] and byMethod[m][i] must describe the same sample order.
func CollectNegatives(baseline []EvalResult, byMethod map[string][]EvalResult, methods []string, theta float64) NegativeSet {
	return accuracy.CollectNegatives(baseline, byMethod, methods, theta)
}

// TaskBreakdown returns each task group's share of a negative set —
// Figure 7's input.
func TaskBreakdown(set NegativeSet, samples []Sample) map[string]float64 {
	return accuracy.TaskBreakdown(set, samples)
}

// SortedGroups returns a breakdown's keys in descending-share order.
func SortedGroups(m map[string]float64) []string { return accuracy.SortedGroups(m) }
