package rethinkkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv"
)

// Unknown KV quantization methods must fail fast at construction on every
// facade that accepts WithKVQuant, with the typed sentinel — mirroring the
// ErrUnknownPolicy contract.
func TestKVQuantUnknownMethodFailsFast(t *testing.T) {
	if _, err := rethinkkv.NewServer(rethinkkv.WithKVQuant("int3")); !errors.Is(err, rethinkkv.ErrUnknownQuantMethod) {
		t.Fatalf("NewServer bad quant = %v, want ErrUnknownQuantMethod", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithKVQuant("fp8")); !errors.Is(err, rethinkkv.ErrUnknownQuantMethod) {
		t.Fatalf("NewFleet bad quant = %v, want ErrUnknownQuantMethod", err)
	}
	if _, err := rethinkkv.NewCluster([]string{"fp16"}, rethinkkv.WithKVQuant("nf4")); !errors.Is(err, rethinkkv.ErrUnknownQuantMethod) {
		t.Fatalf("NewCluster bad quant = %v, want ErrUnknownQuantMethod", err)
	}
}

// Every name the registry lists must construct a working server.
func TestKVQuantMethodsRegistry(t *testing.T) {
	methods := rethinkkv.KVQuantMethods()
	want := []string{rethinkkv.KVQuantFP32, rethinkkv.KVQuantInt8, rethinkkv.KVQuantInt4}
	if len(methods) != len(want) {
		t.Fatalf("KVQuantMethods() = %v, want %v", methods, want)
	}
	for i, name := range want {
		if methods[i] != name {
			t.Fatalf("KVQuantMethods()[%d] = %q, want %q", i, methods[i], name)
		}
	}
	for _, name := range methods {
		s, err := rethinkkv.NewServer(rethinkkv.WithKVQuant(name), rethinkkv.WithMaxNewTokens(4))
		if err != nil {
			t.Fatalf("NewServer(WithKVQuant(%q)): %v", name, err)
		}
		s.Close()
	}
}

// A quantized server must serve real streams: per-request token counts hit
// the cap and the stream is identical across two identically-seeded servers
// (determinism at the facade boundary).
func TestKVQuantServerServesDeterministically(t *testing.T) {
	run := func() [][]int {
		t.Helper()
		s, err := rethinkkv.NewServer(
			rethinkkv.WithKVQuant(rethinkkv.KVQuantInt4),
			rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(10), rethinkkv.WithPageTokens(4))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		prompts := [][]int{{1, 2, 3, 4, 5}, {100, 200, 300}, {42}}
		chans := make([]<-chan rethinkkv.Token, len(prompts))
		for i, p := range prompts {
			ch, err := s.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: p})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			chans[i] = ch
		}
		out := make([][]int, len(prompts))
		for i, ch := range chans {
			for tok := range ch {
				out[i] = append(out[i], tok.ID)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != 10 {
			t.Fatalf("request %d: %d tokens, want 10", i, len(a[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("request %d token %d: %d != %d across identical servers", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// The accuracy evaluator must score the live quant methods with the same
// vocabulary as the offline compression methods — and reject fp32, whose
// deltas against the fp16-plane reference are identically zero by
// construction.
func TestKVQuantAccuracyDeltas(t *testing.T) {
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(3), rethinkkv.WithContSteps(8))
	if err != nil {
		t.Fatal(err)
	}
	s := ev.LongBenchSamples(1, 96, 7)[0]
	ref := ev.Baseline(s)
	r8, err := ev.Evaluate(ref, rethinkkv.KVQuantInt8)
	if err != nil {
		t.Fatalf("evaluate int8: %v", err)
	}
	r4, err := ev.Evaluate(ref, rethinkkv.KVQuantInt4)
	if err != nil {
		t.Fatalf("evaluate int4: %v", err)
	}
	for name, r := range map[string]rethinkkv.EvalResult{"int8": r8, "int4": r4} {
		if r.Retention != 1 {
			t.Fatalf("%s: retention %v, want 1 (quantization drops no positions)", name, r.Retention)
		}
		if r.HiddenSim <= 0 || r.HiddenSim > 1 {
			t.Fatalf("%s: hidden cosine %v out of (0, 1]", name, r.HiddenSim)
		}
		if r.Fidelity <= 0 || r.Fidelity > 1 {
			t.Fatalf("%s: key fidelity %v out of (0, 1]", name, r.Fidelity)
		}
	}
	if r4.Fidelity > r8.Fidelity {
		t.Fatalf("int4 key fidelity %v should not beat int8 %v", r4.Fidelity, r8.Fidelity)
	}
	if _, err := ev.Evaluate(ref, rethinkkv.KVQuantFP32); !errors.Is(err, rethinkkv.ErrUnknownMethod) {
		t.Fatalf("evaluate fp32 = %v, want ErrUnknownMethod", err)
	}
}
