package rethinkkv

import (
	"fmt"
	"time"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/faults"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
)

// Option configures the public constructors (New, NewSystem, NewCluster,
// NewEvaluator). Unknown names surface as typed errors (ErrUnknownMethod,
// ErrUnknownModel, ...) when the constructor resolves the configuration.
type Option func(*config)

// config is the resolved functional-option state shared by all facades.
type config struct {
	method       string
	model        string
	hardware     string
	engine       string
	seed         uint64
	tp           int
	batchCap     int
	maxNew       int
	contSteps    int
	maxBatch     int
	kvPages      int
	pageTokens   int
	prefillChunk int
	tokenBudget  int
	schedPol     string
	kvQuant      string
	sparseTopK   int
	realEngine   bool
	sharedPrefix []int
	routerName   string
	migrate      bool

	maxQueue         int
	admissionTimeout time.Duration
	faults           *FaultPlan
}

func defaultConfig() config {
	return config{
		method:       "fp16",
		model:        "llama-2-7b",
		hardware:     "a6000",
		engine:       "lmdeploy",
		seed:         1,
		tp:           1,
		batchCap:     64,
		maxNew:       32,
		contSteps:    16,
		maxBatch:     8,
		kvPages:      0,
		pageTokens:   16,
		prefillChunk: 32,
		schedPol:     SchedFCFS,
		kvQuant:      KVQuantFP32,
		routerName:   RouterBaseline,
		migrate:      true,
	}
}

func buildConfig(opts []Option) config {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMethod selects the compression method by name (see Methods()).
// Default: "fp16".
func WithMethod(name string) Option { return func(c *config) { c.method = name } }

// WithModel selects the model shape by name (see Models()).
// Default: "llama-2-7b".
func WithModel(name string) Option { return func(c *config) { c.model = name } }

// WithHardware selects the accelerator by name (see Hardware()).
// Default: "a6000".
func WithHardware(name string) Option { return func(c *config) { c.hardware = name } }

// WithEngine selects the serving engine by name (see Engines()).
// Default: "lmdeploy".
func WithEngine(name string) Option { return func(c *config) { c.engine = name } }

// WithSeed fixes the random seed for model weights, traces, and length
// sampling. Default: 1.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithTP sets the tensor-parallel degree for the cost model. Default: 1.
func WithTP(tp int) Option { return func(c *config) { c.tp = tp } }

// WithBatchCap bounds the per-GPU batch size in cluster simulation.
// Default: 64.
func WithBatchCap(n int) Option { return func(c *config) { c.batchCap = n } }

// WithMaxNewTokens sets how many tokens Pipeline.Generate streams per call.
// Default: 32.
func WithMaxNewTokens(n int) Option { return func(c *config) { c.maxNew = n } }

// WithContSteps sets the greedy continuation length the accuracy evaluator
// compares between reference and compressed runs. Default: 16.
func WithContSteps(n int) Option { return func(c *config) { c.contSteps = n } }

// WithMaxBatch bounds how many requests the continuous-batching server
// decodes concurrently per iteration. Default: 8.
func WithMaxBatch(n int) Option { return func(c *config) { c.maxBatch = n } }

// WithKVPages sets the server's global KV page budget (per-layer pages
// shared by all live sequences); when it runs out, the scheduler preempts
// and later recomputes. 0 (the default) means unbounded.
func WithKVPages(n int) Option { return func(c *config) { c.kvPages = n } }

// WithPageTokens sets the KV page size in tokens for the server's paged
// cache. Default: 16.
func WithPageTokens(n int) Option { return func(c *config) { c.pageTokens = n } }

// WithPrefillChunk sets how many prompt tokens the server prefills per
// scheduling iteration. Prompts longer than the chunk are prefilled
// incrementally, each chunk fused into the same weight pass as the running
// decode batch, so a long arriving prompt delays running streams by one
// chunk's step time instead of stalling them for its whole prefill.
// Output is bit-identical for every chunk size. Smaller chunks bound the
// running streams' inter-token gap tighter; larger chunks reach the long
// prompt's first token sooner. Default: 32.
func WithPrefillChunk(n int) Option { return func(c *config) { c.prefillChunk = n } }

// WithTokenBudget enables Sarathi-style stall-free batching with a shared
// per-iteration token budget of n: each scheduling iteration packs prefill
// chunks from every admitted mid-prefill prompt (oldest first, each capped
// by WithPrefillChunk and its remaining prompt) into the same fused weight
// pass as the running decode batch, until decode lanes + chunk tokens
// reach n. k long prompts arriving together then prefill concurrently
// through shared weight-stationary passes instead of one-at-a-time, so
// their aggregate time-to-first-token stops degrading linearly in k, while
// running decode streams still never wait more than one budgeted pass.
// Output stays bit-identical per request for every budget. A useful budget
// is roughly maxBatch + k·prefillChunk for the burst width k it should
// absorb. Default: 0 — single-chunk mode, one chunk of at most
// WithPrefillChunk tokens per iteration (the pre-budget behaviour).
func WithTokenBudget(n int) Option { return func(c *config) { c.tokenBudget = n } }

// WithSchedPolicy selects the server's admission/preemption policy by name
// (see SchedPolicies()): SchedFCFS or SchedSJF. Default: SchedFCFS.
func WithSchedPolicy(name string) Option { return func(c *config) { c.schedPol = name } }

// WithKVQuant selects the live serving plane's KV page precision by name
// (see KVQuantMethods()): KVQuantFP32 (the default full-precision pages),
// KVQuantInt8, or KVQuantInt4. Quantized pages hold the same byte budget's
// worth of context in 3–8× more resident pages — WithKVPages stays
// denominated in fp32-page bytes and the engine scales it — so a server
// under page pressure preempts less and sustains more concurrent streams.
// Decode streams the codes through fused dequantize-on-read kernels (no
// fp32 copy of the context is ever materialised) and stays deterministic:
// preemption→recompute and chunked prefill reproduce streams bit-exactly.
// Outputs are not bit-identical to fp32 serving; measure the accuracy cost
// per method with NewEvaluator. Applies to NewServer, NewFleet, and
// Cluster.ServeTrace under WithRealEngine; the simulator and the offline
// compression methods (WithMethod) are unaffected.
func WithKVQuant(method string) Option { return func(c *config) { c.kvQuant = method } }

// WithSparseAttention enables Quest-style sparse decode attention on the
// live serving plane: the paged cache maintains per-page key min/max
// summaries, and every decode step scores them against the query and attends
// only the topK most critical pages per head (the newest page always
// included). Prefill stays dense — it is what builds the summaries. At topK
// at or above the resident page count the output is bit-identical to dense
// serving; below it, decode reads O(topK) pages instead of the whole context,
// trading a measurable accuracy cost (see NewEvaluator / EvalSparse) for
// long-context decode speed. Composes with WithKVQuant — summaries fold over
// dequantized codes, so the criticality bound covers exactly what the fused
// kernels stream. Serving stays deterministic: preemption recompute,
// WithSharedPrefix clones, and cross-engine migration replay decode-produced
// tokens through the same sparse steps and reproduce streams bit-exactly.
// topK 0 (the default) disables sparsity. Applies to NewServer, NewFleet,
// and Cluster.ServeTrace under WithRealEngine.
func WithSparseAttention(topK int) Option { return func(c *config) { c.sparseTopK = topK } }

// WithSharedPrefix installs a shared prompt prefix (e.g. a system prompt)
// the server prefills once and reuses — via copy-on-write KV page clones —
// for every request whose prompt strictly extends it. Decode output is
// bit-identical to cold prefill; only the prefix recompute is saved. The
// slice is copied.
func WithSharedPrefix(tokens []int) Option {
	return func(c *config) { c.sharedPrefix = append([]int(nil), tokens...) }
}

// WithRealEngine makes Cluster.ServeTrace replay the trace through real
// continuous-batching engines (one per GPU, tiny-model decode over paged
// KV, wall-clock time) instead of the discrete-event cost-model simulator.
func WithRealEngine() Option { return func(c *config) { c.realEngine = true } }

// WithRouter selects the fleet's routing policy by name (see
// FleetRouters()): the paper's four Table 8 policies plus the live-only
// "kv-pressure". Default: RouterBaseline. Cluster.ServeTrace takes its
// router as an argument instead and ignores this option.
func WithRouter(name string) Option { return func(c *config) { c.routerName = name } }

// WithMaxQueue bounds the admission queue of each serving engine: a Submit
// finding n requests already queued (admitted-but-not-started) fails fast
// with ErrOverloaded instead of growing the backlog without limit — the
// caller sees back-pressure while its request is still cheap to retry
// elsewhere. 0 (the default) leaves the queue unbounded. Applies per
// engine: a fleet of k engines holds up to k×n queued requests.
func WithMaxQueue(n int) Option { return func(c *config) { c.maxQueue = n } }

// WithAdmissionTimeout sets the default TTFT deadline stamped on every
// request that does not carry its own ServeRequest.Deadline: a request
// still queued — no token streamed — that long after submission is shed,
// its stream ending with a token whose Err wraps ErrDeadlineExceeded,
// instead of burning KV pages on work that already blew its SLO. Requests
// that started streaming are never shed. 0 (the default) disables
// deadline shedding.
func WithAdmissionTimeout(d time.Duration) Option {
	return func(c *config) { c.admissionTimeout = d }
}

// FaultPlan schedules deterministic faults for WithFaults: every entry is
// keyed by engine index (0 for a standalone Server) and triggers on the
// engine's own event stream — its Nth scheduling iteration, its Nth Submit
// — so a chaos scenario replays identically across runs and machines.
type FaultPlan struct {
	// Seed feeds PickVictim, so seed sweeps vary which engine a scenario
	// targets without varying the fault mechanism.
	Seed uint64
	// StepPanics maps engine index -> 1-based scheduling iteration at
	// which that engine's step loop panics, once. The recover boundary
	// turns the panic into a quarantined engine (ErrEngineFailed); a
	// fleet fails the engine's requests over to healthy replicas.
	StepPanics map[int]int
	// SubmitStorms maps engine index -> how many consecutive Submits that
	// engine rejects with ErrOutOfPages — transient capacity exhaustion,
	// as a loaded migration target reports under real page pressure.
	SubmitStorms map[int]int
	// StepDelays maps engine index -> extra latency added to each of its
	// scheduling iterations — the slow-replica shape that exercises
	// deadline shedding without killing anything.
	StepDelays map[int]time.Duration
}

// PickVictim deterministically chooses one of n engines from the plan's
// seed and a salt — chaos scenarios use it to pick which engine to kill so
// seed sweeps vary the victim, not the mechanism.
func (fp FaultPlan) PickVictim(n int, salt uint64) int {
	return faults.New(fp.Seed).Pick(n, salt)
}

// WithFaults installs a deterministic fault-injection plan on the serving
// engines (NewServer, NewFleet) — test and chaos-benchmark scaffolding for
// exercising panic isolation, failover and deadline shedding at exact,
// replayable points in each engine's execution. The plan is copied. No
// faults are injected when the option is absent.
func WithFaults(plan FaultPlan) Option {
	return func(c *config) { c.faults = &plan }
}

// WithMigration toggles cross-engine migration of preemption victims on
// the real multi-engine paths (NewFleet, and Cluster.ServeTrace under
// WithRealEngine). When on — the default — a request evicted under KV page
// pressure whose whole remaining lifetime fits another engine's free pages
// is re-admitted there via the cheap path: its prompt plus already-emitted
// tokens replay through the target's bit-identical recompute plane, so the
// caller's stream is unchanged and only wall-clock time is spent. When
// off, victims re-queue on their own engine as a standalone Server does.
func WithMigration(on bool) Option { return func(c *config) { c.migrate = on } }

// resolveKVQuant maps a KV quantization method name to its code width in
// bits (0 for full precision), with a typed error.
func resolveKVQuant(name string) (int, error) {
	switch name {
	case KVQuantFP32:
		return 0, nil
	case KVQuantInt8:
		return 8, nil
	case KVQuantInt4:
		return 4, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownQuantMethod, name)
}

// resolveMethod maps a method name to its registration, with a typed error.
func resolveMethod(name string) (compress.Method, error) {
	m, err := compress.Get(name)
	if err != nil {
		return compress.Method{}, fmt.Errorf("%w: %q", ErrUnknownMethod, name)
	}
	return m, nil
}

// resolveModel maps a model name to its shape descriptor, with a typed error.
func resolveModel(name string) (model.Config, error) {
	cfg, ok := model.ByName(name)
	if !ok {
		return model.Config{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return cfg, nil
}

// resolveEngine maps an engine name to its profile, with a typed error.
func resolveEngine(name string) (engine.Profile, error) {
	p, err := engine.ByName(name)
	if err != nil {
		return engine.Profile{}, fmt.Errorf("%w: %q", ErrUnknownEngine, name)
	}
	return p, nil
}

// resolveHardware maps a hardware name to its descriptor, with a typed error.
func resolveHardware(name string) (gpu.Hardware, error) {
	hw, ok := gpu.ByName(name)
	if !ok {
		return gpu.Hardware{}, fmt.Errorf("%w: %q", ErrUnknownHardware, name)
	}
	return hw, nil
}
