package rethinkkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv"
)

// drainStream splits a facade stream into ordinary tokens and the terminal
// error token (if any).
func drainStream(t *testing.T, ch <-chan rethinkkv.Token) ([]int, error) {
	t.Helper()
	var out []int
	var terr error
	for tok := range ch {
		if tok.Err != nil {
			terr = tok.Err
			continue
		}
		out = append(out, tok.ID)
	}
	return out, terr
}

// waitServerAdmitted polls server stats until n admissions happened.
func waitServerAdmitted(t *testing.T, srv *rethinkkv.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Admitted < n {
		if time.Now().After(deadline) {
			t.Fatalf("server never admitted %d requests", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestServerOverloadTyped pins the public back-pressure contract: with the
// single batch slot taken and WithMaxQueue(1) full, the next Submit fails
// with an errors.Is-able ErrOverloaded, and the queued request is
// unaffected.
func TestServerOverloadTyped(t *testing.T) {
	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(5),
		rethinkkv.WithMaxBatch(1),
		rethinkkv.WithMaxQueue(1),
		rethinkkv.WithMaxNewTokens(24),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	chA, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitServerAdmitted(t, srv, 1)
	chB, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{4, 5, 6}, MaxNew: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{7, 8}}); !errors.Is(err, rethinkkv.ErrOverloaded) {
		t.Fatalf("overloaded submit: err = %v, want ErrOverloaded", err)
	}
	if toks, terr := drainStream(t, chA); terr != nil || len(toks) != 24 {
		t.Fatalf("runner: %d tokens, err %v", len(toks), terr)
	}
	if toks, terr := drainStream(t, chB); terr != nil || len(toks) != 6 {
		t.Fatalf("queued request: %d tokens, err %v", len(toks), terr)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServerDeadlineShedTyped: a server slowed to ~1ms per iteration by an
// injected delay decodes a long runner while a queued request's TTFT
// deadline (per-request, and the WithAdmissionTimeout default) expires.
// The shed stream must end with a token whose Err is errors.Is-able
// against ErrDeadlineExceeded, and Stats must count the sheds.
func TestServerDeadlineShedTyped(t *testing.T) {
	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(5),
		rethinkkv.WithMaxBatch(1),
		rethinkkv.WithAdmissionTimeout(20*time.Millisecond),
		rethinkkv.WithFaults(rethinkkv.FaultPlan{StepDelays: map[int]time.Duration{0: time.Millisecond}}),
		rethinkkv.WithMaxNewTokens(60),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	chA, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitServerAdmitted(t, srv, 1)
	chB, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{4, 5, 6}, MaxNew: 6})
	if err != nil {
		t.Fatal(err)
	}
	chC, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{
		Prompt: []int{7, 8}, MaxNew: 6, Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	if toks, terr := drainStream(t, chB); len(toks) != 0 || !errors.Is(terr, rethinkkv.ErrDeadlineExceeded) {
		t.Fatalf("default-deadline request: %d tokens, err %v, want ErrDeadlineExceeded", len(toks), terr)
	}
	if toks, terr := drainStream(t, chC); len(toks) != 0 || !errors.Is(terr, rethinkkv.ErrDeadlineExceeded) {
		t.Fatalf("explicit-deadline request: %d tokens, err %v, want ErrDeadlineExceeded", len(toks), terr)
	}
	if toks, terr := drainStream(t, chA); terr != nil || len(toks) != 60 {
		t.Fatalf("started runner: %d tokens, err %v; started requests are never shed", len(toks), terr)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := srv.Stats()
	if st.Shed != 2 || st.Completed != 1 {
		t.Fatalf("Shed/Completed = %d/%d, want 2/1", st.Shed, st.Completed)
	}
}

// TestServerPanicFailsTyped: an injected step panic must surface on the
// facade as ErrEngineFailed — on the live stream's terminal token, on
// Failed(), and on later Submits — instead of crashing the process.
func TestServerPanicFailsTyped(t *testing.T) {
	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(5),
		rethinkkv.WithFaults(rethinkkv.FaultPlan{StepPanics: map[int]int{0: 3}}),
		rethinkkv.WithMaxNewTokens(12),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	toks, terr := drainStream(t, ch)
	if !errors.Is(terr, rethinkkv.ErrEngineFailed) {
		t.Fatalf("stream terminal err = %v, want ErrEngineFailed", terr)
	}
	if len(toks) >= 12 {
		t.Fatal("stream completed despite the injected panic")
	}
	if ferr := srv.Failed(); !errors.Is(ferr, rethinkkv.ErrEngineFailed) {
		t.Fatalf("Failed() = %v, want ErrEngineFailed", ferr)
	}
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{4}}); !errors.Is(err, rethinkkv.ErrEngineFailed) {
		t.Fatalf("submit after failure: %v, want ErrEngineFailed", err)
	}
	if err := srv.Drain(context.Background()); !errors.Is(err, rethinkkv.ErrEngineFailed) {
		t.Fatalf("drain after failure: %v, want ErrEngineFailed", err)
	}
}

// TestFleetFailoverBitIdenticalFacade kills engine 0 of a 2-engine fleet at
// its fifth iteration and pins the public contract: every stream completes
// with exactly the tokens a fault-free fleet produces (failover is replay,
// not approximation), and FleetStats reports the failure and re-homings.
func TestFleetFailoverBitIdenticalFacade(t *testing.T) {
	prompts := [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{42},
		{9, 8, 7, 6},
	}
	const maxNew = 12

	serve := func(t *testing.T, opts ...rethinkkv.Option) [][]int {
		t.Helper()
		base := []rethinkkv.Option{rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(maxNew)}
		fl, err := rethinkkv.NewFleet(2, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer fl.Close()
		chans := make([]<-chan rethinkkv.Token, len(prompts))
		for i, prompt := range prompts {
			ch, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			chans[i] = ch
		}
		out := make([][]int, len(prompts))
		for i, ch := range chans {
			toks, terr := drainStream(t, ch)
			if terr != nil {
				t.Fatalf("request %d terminated with %v", i, terr)
			}
			out[i] = toks
		}
		if err := fl.Drain(context.Background()); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if t.Failed() {
			t.FailNow()
		}
		// Stats checks only apply to the faulted run; the caller inspects.
		if st := fl.Stats(); len(opts) > 0 {
			if st.EngineFailures != 1 {
				t.Fatalf("EngineFailures = %d, want 1", st.EngineFailures)
			}
			if st.FailedOver == 0 {
				t.Fatal("no request failed over")
			}
		}
		return out
	}

	want := serve(t)
	got := serve(t, rethinkkv.WithFaults(rethinkkv.FaultPlan{Seed: 9, StepPanics: map[int]int{0: 5}}))
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != fault-free %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestFaultOptionValidation: the new options reject nonsense values with
// ErrInvalidOption on both constructors, and PickVictim is deterministic.
func TestFaultOptionValidation(t *testing.T) {
	if _, err := rethinkkv.NewServer(rethinkkv.WithMaxQueue(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewServer(WithMaxQueue(-1)): %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewServer(rethinkkv.WithAdmissionTimeout(-time.Second)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewServer(WithAdmissionTimeout(-1s)): %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithMaxQueue(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewFleet(WithMaxQueue(-1)): %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithAdmissionTimeout(-time.Second)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewFleet(WithAdmissionTimeout(-1s)): %v, want ErrInvalidOption", err)
	}
	plan := rethinkkv.FaultPlan{Seed: 3}
	v := plan.PickVictim(4, 1)
	if v < 0 || v >= 4 {
		t.Fatalf("PickVictim out of range: %d", v)
	}
	if v2 := plan.PickVictim(4, 1); v2 != v {
		t.Fatalf("PickVictim not deterministic: %d then %d", v, v2)
	}
}
