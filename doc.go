// Package rethinkkv is a pure-Go reproduction of "Rethinking Key-Value
// Cache Compression Techniques for Large Language Model Serving"
// (MLSys 2025): full implementations of the KV cache compression methods
// the paper evaluates (KIVI, GEAR, H2O, StreamingLLM, SnapKV, TOVA), a
// runnable tiny transformer they operate on, an analytical GPU cost model
// of the serving engines they were measured under (TRL, TRL+FlashAttention,
// LMDeploy), and runners that regenerate every table and figure in the
// paper's evaluation. See README.md and DESIGN.md.
package rethinkkv
