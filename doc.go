// Package rethinkkv is a pure-Go reproduction of "Rethinking Key-Value
// Cache Compression Techniques for Large Language Model Serving"
// (MLSys 2025): full implementations of the KV cache compression methods
// the paper evaluates (KIVI, GEAR, H2O, StreamingLLM, SnapKV, TOVA), a
// runnable tiny transformer they operate on, an analytical GPU cost model
// of the serving engines they were measured under (TRL, TRL+FlashAttention,
// LMDeploy), and runners that regenerate every table and figure in the
// paper's evaluation. See README.md and DESIGN.md.
//
// The package is the public facade over the internal layers. Everything is
// constructed with functional options and selected by name:
//
//	p, err := rethinkkv.New(rethinkkv.WithMethod("kivi-4"), rethinkkv.WithSeed(42))
//	tokens, err := p.Generate(ctx, prompt) // streaming, cancellable, re-invokable
//
//	sys, err := rethinkkv.NewSystem(rethinkkv.WithModel("llama-2-7b"),
//		rethinkkv.WithHardware("a6000"), rethinkkv.WithEngine("lmdeploy"),
//		rethinkkv.WithMethod("stream-512"), rethinkkv.WithTP(2))
//	thr := sys.DecodeThroughput(8, 4096)
//
//	c, err := rethinkkv.NewCluster([]string{"fp16", "stream-512", "stream-512", "stream-512"})
//	r, err := c.Router("w/both")
//	outcomes, err := c.ServeTrace(rethinkkv.ShareGPTTrace(1000, 10, 1), r)
//
//	srv, err := rethinkkv.NewServer(rethinkkv.WithMaxBatch(8), rethinkkv.WithKVPages(256))
//	stream, err := srv.Submit(ctx, rethinkkv.ServeRequest{Prompt: prompt}) // continuous batching
//
// Registries (Methods, Engines, Hardware, Models, Routers, SchedPolicies)
// list the valid names; unknown names surface as typed errors
// (ErrUnknownMethod, ...).
package rethinkkv
