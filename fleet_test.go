package rethinkkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv"
)

// The fleet must reproduce exactly what the plain pipeline decodes for the
// same prompts, no matter how the router spreads them — the facade-level
// equivalence acceptance test for the multi-engine path.
func TestFleetMatchesPipelineGenerate(t *testing.T) {
	const maxNew = 14
	prompts := [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{7, 7, 7, 7, 7, 7, 7, 7},
		{42},
		{350, 351, 352, 353, 354, 355},
		{9, 8, 7},
	}

	p, err := rethinkkv.New(rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		out, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	fl, err := rethinkkv.NewFleet(2,
		rethinkkv.WithSeed(5),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(3),
		rethinkkv.WithPageTokens(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Size() != 2 {
		t.Fatalf("Size = %d, want 2", fl.Size())
	}
	if fl.RouterName() != rethinkkv.RouterBaseline {
		t.Fatalf("RouterName = %q, want the default %q", fl.RouterName(), rethinkkv.RouterBaseline)
	}

	chans := make([]<-chan rethinkkv.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		var got, positions []int
		for tok := range ch {
			got = append(got, tok.ID)
			positions = append(positions, tok.Pos)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want[i]))
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: fleet %d != pipeline %d", i, j, got[j], want[i][j])
			}
			if positions[j] != len(prompts[i])+j {
				t.Fatalf("request %d token %d: pos %d, want %d", i, j, positions[j], len(prompts[i])+j)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := fl.Stats()
	completed, routed := 0, 0
	for _, es := range st.Engines {
		completed += es.Completed
	}
	for _, n := range st.Routed {
		routed += n
	}
	if completed != len(prompts) || routed != len(prompts) {
		t.Fatalf("completed %d / routed %d, want %d each", completed, routed, len(prompts))
	}
	if out := fl.Outcomes(); len(out) != len(prompts) {
		t.Fatalf("%d outcomes, want %d", len(out), len(prompts))
	}
}

// Every registered fleet policy must construct and serve.
func TestFleetRoutersRegistry(t *testing.T) {
	names := rethinkkv.FleetRouters()
	if len(names) != len(rethinkkv.Routers())+1 {
		t.Fatalf("FleetRouters = %v, want the paper's four plus kv-pressure", names)
	}
	for _, name := range names {
		fl, err := rethinkkv.NewFleet(2,
			rethinkkv.WithRouter(name),
			rethinkkv.WithMaxNewTokens(4),
		)
		if err != nil {
			t.Fatalf("router %q rejected: %v", name, err)
		}
		if fl.RouterName() != name {
			t.Fatalf("RouterName = %q, want %q", fl.RouterName(), name)
		}
		ch, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{3, 1, 4, 1, 5}})
		if err != nil {
			t.Fatalf("router %q submit: %v", name, err)
		}
		n := 0
		for range ch {
			n++
		}
		if n != 4 {
			t.Fatalf("router %q streamed %d tokens, want 4", name, n)
		}
		fl.Close()
	}
}

func TestFleetErrors(t *testing.T) {
	if _, err := rethinkkv.NewFleet(0); !errors.Is(err, rethinkkv.ErrEmptyFleet) {
		t.Fatalf("zero engines = %v, want ErrEmptyFleet", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithRouter("round-robin")); !errors.Is(err, rethinkkv.ErrUnknownRouter) {
		t.Fatalf("bad router = %v, want ErrUnknownRouter", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithMaxBatch(0)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("zero batch = %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewFleet(1, rethinkkv.WithSchedPolicy("lifo")); !errors.Is(err, rethinkkv.ErrUnknownPolicy) {
		t.Fatalf("bad policy = %v, want ErrUnknownPolicy", err)
	}

	fl, err := rethinkkv.NewFleet(2, rethinkkv.WithMaxNewTokens(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{}); !errors.Is(err, rethinkkv.ErrEmptyPrompt) {
		t.Fatalf("empty prompt = %v, want ErrEmptyPrompt", err)
	}
	if _, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{99999}}); !errors.Is(err, rethinkkv.ErrInvalidToken) {
		t.Fatalf("out-of-vocab = %v, want ErrInvalidToken", err)
	}
	fl.Close()
	if _, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1}}); !errors.Is(err, rethinkkv.ErrServerClosed) {
		t.Fatalf("submit after close = %v, want ErrServerClosed", err)
	}
}

// badRouter steps outside the engine range on purpose.
type badRouter struct{}

func (badRouter) Name() string { return "bad" }
func (badRouter) Route(req rethinkkv.Request, views []rethinkkv.GPUView) int {
	return len(views) + 3
}

// Regression for the typed sentinel on the real-engine path: a custom
// public router that misroutes must surface ErrBadRoute from ServeTrace,
// not an untyped string.
func TestServeTraceRealEngineBadRouteTyped(t *testing.T) {
	cluster, err := rethinkkv.NewCluster([]string{"fp16", "fp16"},
		rethinkkv.WithRealEngine(),
		rethinkkv.WithMaxNewTokens(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []rethinkkv.Request{{ID: 0, PromptLen: 5, RefLen: 4}}
	if _, err := cluster.ServeTrace(reqs, badRouter{}); !errors.Is(err, rethinkkv.ErrBadRoute) {
		t.Fatalf("misrouting replay = %v, want ErrBadRoute", err)
	}
}

// The rebased real-engine replay rides the fleet pool: with migration
// enabled (the default) and per-GPU budgets, replay still completes with
// exact per-request response lengths, and the custom-router path sees the
// live view fields populated.
type liveViewProbe struct {
	sawLive bool
}

func (p *liveViewProbe) Name() string { return "probe" }
func (p *liveViewProbe) Route(req rethinkkv.Request, views []rethinkkv.GPUView) int {
	best := 0
	for i, v := range views {
		if v.PageBudget > 0 && v.FreePages >= 0 {
			p.sawLive = true
		}
		if v.QueuedTokens < views[best].QueuedTokens {
			best = i
		}
	}
	return best
}

func TestServeTraceRealEngineLiveViews(t *testing.T) {
	cluster, err := rethinkkv.NewCluster([]string{"fp16", "fp16"},
		rethinkkv.WithRealEngine(),
		rethinkkv.WithSeed(3),
		rethinkkv.WithMaxNewTokens(6),
		rethinkkv.WithPageTokens(4),
		rethinkkv.WithKVPages(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	probe := &liveViewProbe{}
	reqs := make([]rethinkkv.Request, 6)
	for i := range reqs {
		reqs[i] = rethinkkv.Request{ID: i, PromptLen: 5 + i, RefLen: 6, ArrivalTime: 0}
	}
	out, err := cluster.ServeTrace(reqs, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("%d outcomes, want %d", len(out), len(reqs))
	}
	for i, o := range out {
		if o.Req.ID != i || o.RespLen != 6 {
			t.Fatalf("outcome %d = %+v, want ID %d RespLen 6", i, o, i)
		}
	}
	if !probe.sawLive {
		t.Fatal("custom router never saw live KV fields on the real-engine path")
	}
}
